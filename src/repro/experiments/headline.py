"""Section VI headline driver: power gain at fixed reconstruction quality.

The paper's flagship numbers come from holding SNR fixed and asking how
many measurements (= RMPI channels = amplifiers) each design needs:

* SNR = 20 dB → m = 96 (hybrid) vs m = 240 (normal): ~2.5x less power;
* SNR = 17 dB → m = 16 (hybrid) vs m = 176 (normal): ~11x less power.

This driver *measures* the required m on real recovery sweeps (rather than
asserting the paper's counts), then evaluates the analytical power models
at both counts.  It also reports the model gains at the paper's own
operating points for a direct comparison row in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import FrontEndConfig
from repro.core.pipeline import default_codebook, run_record
from repro.experiments.runner import ExperimentScale, active_scale
from repro.power.comparison import (
    PAPER_OPERATING_POINTS,
    measurements_for_target_snr,
    power_gain,
)

__all__ = ["HeadlinePoint", "HeadlineData", "run_headline", "DEFAULT_M_CANDIDATES"]

#: Measurement-count grid searched for each quality target.
DEFAULT_M_CANDIDATES: Tuple[int, ...] = (
    8, 16, 24, 32, 48, 64, 96, 128, 160, 192, 224, 256, 320, 384, 448, 500,
)


@dataclass(frozen=True)
class HeadlinePoint:
    """Measured comparison at one SNR target."""

    target_snr_db: float
    m_hybrid: Optional[int]
    m_normal: Optional[int]
    measured_gain: Optional[float]
    paper_m_hybrid: int
    paper_m_normal: int
    paper_gain: float
    model_gain_at_paper_m: float

    @property
    def normal_cs_failed(self) -> bool:
        """True when no searched m let normal CS reach the target — the
        paper's "fails to converge" regime."""
        return self.m_normal is None


@dataclass(frozen=True)
class HeadlineData:
    """All measured operating points."""

    points: Tuple[HeadlinePoint, ...]
    fs_hz: float

    def gains_exceed(self, minimum: float) -> bool:
        """Every measured gain at least ``minimum`` (None counts as a win
        for hybrid: normal CS could not even reach the target)."""
        for p in self.points:
            if p.m_hybrid is None:
                return False
            if p.measured_gain is not None and p.measured_gain < minimum:
                return False
        return True


def _snr_curve(
    method: str,
    config: FrontEndConfig,
    scale: ExperimentScale,
    m_candidates: Sequence[int],
) -> Dict[int, float]:
    """Mean SNR for every candidate measurement count (computed eagerly so
    the monotone search can reuse it for several SNR targets)."""
    records = scale.records()
    codebook = (
        default_codebook(config.lowres_bits, config.acquisition_bits)
        if method == "hybrid"
        else None
    )
    curve: Dict[int, float] = {}
    for m in sorted(set(int(m) for m in m_candidates)):
        if m > config.window_len:
            continue
        cfg = config.with_measurements(m)
        snrs = [
            run_record(
                rec,
                cfg,
                method=method,
                codebook=codebook,
                max_windows=scale.max_windows,
            ).mean_snr_db
            for rec in records
        ]
        curve[m] = float(np.mean(snrs))
    return curve


def run_headline(
    targets_db: Sequence[float] = (20.0, 17.0),
    *,
    config: Optional[FrontEndConfig] = None,
    scale: Optional[ExperimentScale] = None,
    m_candidates: Sequence[int] = DEFAULT_M_CANDIDATES,
    fs_hz: float = 360.0,
) -> HeadlineData:
    """Measure required m per method per SNR target; evaluate power gains."""
    cfg = config or FrontEndConfig()
    scale = scale or active_scale()
    curves = {
        method: _snr_curve(method, cfg, scale, m_candidates)
        for method in ("hybrid", "normal")
    }
    paper_by_target = {p.target_snr_db: p for p in PAPER_OPERATING_POINTS}

    points = []
    for target in targets_db:
        m_h = measurements_for_target_snr(
            lambda m: curves["hybrid"][m], target, list(curves["hybrid"])
        )
        m_n = measurements_for_target_snr(
            lambda m: curves["normal"][m], target, list(curves["normal"])
        )
        gain = None
        if m_h is not None and m_n is not None:
            gain = power_gain(
                m_n, m_h, fs_hz=fs_hz, n=cfg.window_len, lowres_bits=cfg.lowres_bits
            )
        paper = paper_by_target.get(float(target))
        if paper is not None:
            paper_m_h, paper_m_n, paper_g = (
                paper.m_hybrid,
                paper.m_normal,
                paper.paper_gain,
            )
        else:
            paper_m_h, paper_m_n, paper_g = (-1, -1, float("nan"))
        # The paper's measurement counts are tied to its n = 512 windows;
        # evaluate the model there regardless of this run's window length.
        model_gain = (
            power_gain(
                paper_m_n,
                paper_m_h,
                fs_hz=fs_hz,
                n=512,
                lowres_bits=cfg.lowres_bits,
            )
            if paper is not None
            else float("nan")
        )
        points.append(
            HeadlinePoint(
                target_snr_db=float(target),
                m_hybrid=m_h,
                m_normal=m_n,
                measured_gain=gain,
                paper_m_hybrid=paper_m_h,
                paper_m_normal=paper_m_n,
                paper_gain=paper_g,
                model_gain_at_paper_m=model_gain,
            )
        )
    return HeadlineData(points=tuple(points), fs_hz=fs_hz)
