"""Extension experiment: diagnostic quality (QRS detection) vs CR.

The paper uses PRD/SNR as proxies for diagnostic quality (§IV).  This
extension measures the end goal directly: run a Pan-Tompkins-style QRS
detector on the reconstructions and score beat sensitivity/PPV against the
beats detected on the original — for both methods across the CR axis.
The expected shape mirrors Fig. 7: hybrid reconstructions keep the
detector working deep into the >90 % CR regime where normal CS has
destroyed the QRS complexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import FrontEndConfig
from repro.core.frontend import HybridFrontEnd, NormalCsFrontEnd
from repro.core.pipeline import default_codebook
from repro.core.receiver import HybridReceiver
from repro.experiments.runner import ExperimentScale, active_scale
from repro.metrics.diagnostic import reconstruction_fidelity

__all__ = ["DiagnosticPoint", "DiagnosticData", "run_diagnostic"]


@dataclass(frozen=True)
class DiagnosticPoint:
    """Beat-detection fidelity at one CR for one method."""

    cr_percent: float
    method: str
    sensitivity: float
    positive_predictivity: float
    f1: float
    n_reference_beats: int


@dataclass(frozen=True)
class DiagnosticData:
    """Both methods' fidelity curves."""

    points: Tuple[DiagnosticPoint, ...]

    def series(self, method: str) -> List[DiagnosticPoint]:
        """One method's points, ascending in CR."""
        return sorted(
            (p for p in self.points if p.method == method),
            key=lambda p: p.cr_percent,
        )

    def hybrid_dominates(self) -> bool:
        """Hybrid F1 >= normal F1 at every CR (small slack for ties)."""
        normal = {p.cr_percent: p.f1 for p in self.series("normal")}
        return all(
            p.f1 >= normal[p.cr_percent] - 0.02 for p in self.series("hybrid")
        )


def run_diagnostic(
    cr_values: Sequence[float] = (75.0, 88.0, 94.0, 97.0),
    *,
    base_config: Optional[FrontEndConfig] = None,
    scale: Optional[ExperimentScale] = None,
    windows_per_record: int = 4,
) -> DiagnosticData:
    """Measure beat-detection fidelity over the CR axis.

    The detector needs several seconds of context, so whole multi-window
    stretches are reconstructed and scored as one waveform per record.
    """
    config_base = base_config or FrontEndConfig()
    scale = scale or active_scale()
    records = scale.records()
    codebook = default_codebook(
        config_base.lowres_bits, config_base.acquisition_bits
    )
    center = 1 << (config_base.acquisition_bits - 1)

    points: List[DiagnosticPoint] = []
    for cr in cr_values:
        config = config_base.for_cr(cr)
        for method in ("hybrid", "normal"):
            if method == "hybrid":
                frontend = HybridFrontEnd(config, codebook)
                receiver = HybridReceiver(config, codebook)
            else:
                frontend = NormalCsFrontEnd(config)
                receiver = HybridReceiver(config)
            sens, ppv, f1s, n_ref = [], [], [], 0
            for record in records:
                originals, recons = [], []
                for idx, window in enumerate(record.windows(config.window_len)):
                    if idx >= windows_per_record:
                        break
                    packet = frontend.process_window(window, idx)
                    recon = receiver.reconstruct(packet)
                    originals.append(window.astype(float) - center)
                    recons.append(recon.x_centered(center))
                original = np.concatenate(originals)
                reconstructed = np.concatenate(recons)
                score = reconstruction_fidelity(
                    original, reconstructed, record.header.fs_hz
                )
                sens.append(score.sensitivity)
                ppv.append(score.positive_predictivity)
                f1s.append(score.f1)
                n_ref += score.true_positives + score.false_negatives
            points.append(
                DiagnosticPoint(
                    cr_percent=float(cr),
                    method=method,
                    sensitivity=float(np.mean(sens)),
                    positive_predictivity=float(np.mean(ppv)),
                    f1=float(np.mean(f1s)),
                    n_reference_beats=n_ref,
                )
            )
    return DiagnosticData(points=tuple(points))
