"""Shared experiment infrastructure: scales, sweeps, aggregation.

Every figure/table driver in :mod:`repro.experiments` accepts an
:class:`ExperimentScale` so the same code serves quick benchmark runs
(default) and full-database reproductions (set the environment variable
``REPRO_BENCH_SCALE=full`` or pass :data:`FULL_SCALE` explicitly).  The
paper averages over all 48 half-hour records; statistically the window
estimates stabilize long before that, which is what the small scale
exploits.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.codebooks import CodebookKey
from repro.core.config import FrontEndConfig
from repro.core.outcomes import RecordOutcome
from repro.recovery.methods import resolve_method
from repro.runtime.engine import ExecutionEngine, RecordJob
from repro.runtime.executors import Executor
from repro.runtime.task import CodebookSpec
from repro.signals.database import MITBIH_RECORD_NAMES, load_record

__all__ = [
    "ExperimentScale",
    "SMALL_SCALE",
    "FULL_SCALE",
    "active_scale",
    "CrSweepPoint",
    "sweep_compression_ratios",
    "PAPER_CR_VALUES",
]

#: CS-channel compression ratios on the paper's Fig. 7 x-axis (percent).
PAPER_CR_VALUES: Tuple[float, ...] = (50.0, 56.0, 62.0, 69.0, 75.0, 81.0, 88.0, 94.0, 97.0)


@dataclass(frozen=True)
class ExperimentScale:
    """How much data an experiment run consumes.

    Attributes
    ----------
    record_names:
        Which database records participate.
    duration_s:
        Synthetic record length in seconds.
    max_windows:
        Windows evaluated per record (None = every full window).
    """

    record_names: Tuple[str, ...]
    duration_s: float
    max_windows: Optional[int]

    def records(self):
        """Load the participating records."""
        return [
            load_record(name, duration_s=self.duration_s)
            for name in self.record_names
        ]


#: Fast default: 8 morphologically diverse records, 2 windows each.
SMALL_SCALE = ExperimentScale(
    record_names=("100", "101", "103", "107", "119", "200", "208", "231"),
    duration_s=30.0,
    max_windows=2,
)

#: Full reproduction: every record, 4 windows each.
FULL_SCALE = ExperimentScale(
    record_names=MITBIH_RECORD_NAMES,
    duration_s=60.0,
    max_windows=4,
)


def active_scale() -> ExperimentScale:
    """The scale selected by ``REPRO_BENCH_SCALE`` (``small``/``full``)."""
    choice = os.environ.get("REPRO_BENCH_SCALE", "small").strip().lower()
    if choice == "full":
        return FULL_SCALE
    if choice in ("small", ""):
        return SMALL_SCALE
    raise ValueError(
        f"REPRO_BENCH_SCALE must be 'small' or 'full', got {choice!r}"
    )


@dataclass(frozen=True)
class CrSweepPoint:
    """Aggregated results at one compression ratio for one method."""

    cr_percent: float
    method: str
    n_measurements: int
    outcomes: Tuple[RecordOutcome, ...]

    @property
    def mean_snr_db(self) -> float:
        """Grand mean of per-record mean SNRs (paper Fig. 7 top)."""
        return float(np.mean([o.mean_snr_db for o in self.outcomes]))

    @property
    def mean_prd_percent(self) -> float:
        """Grand mean of per-record mean PRDs (paper Fig. 7 bottom)."""
        return float(np.mean([o.mean_prd for o in self.outcomes]))

    @property
    def per_record_snrs(self) -> Dict[str, float]:
        """Record name → mean SNR (feeds the Fig. 8 box stats)."""
        return {o.record_name: o.mean_snr_db for o in self.outcomes}

    @property
    def net_cr_percent(self) -> float:
        """Mean net CR including low-res overhead and framing."""
        return float(np.mean([o.net_cr_percent for o in self.outcomes]))


def sweep_compression_ratios(
    base_config: FrontEndConfig,
    cr_values: Sequence[float] = PAPER_CR_VALUES,
    methods: Sequence[str] = ("hybrid", "normal"),
    scale: Optional[ExperimentScale] = None,
    cache=None,
    executor: Optional[Executor] = None,
) -> List[CrSweepPoint]:
    """The core Fig. 7/8 sweep: CR x method over the chosen scale.

    Returns one :class:`CrSweepPoint` per (CR, method), ordered by CR then
    method.  The whole record × CR × method grid is scheduled through one
    :class:`~repro.runtime.engine.ExecutionEngine` batch, so a parallel
    ``executor`` (e.g. ``ParallelExecutor(workers=4)``) overlaps window
    solves across every grid cell; hybrid tasks share one offline
    codebook recipe that workers rebuild (and cache) locally.

    Pass a :class:`repro.experiments.cache.SweepCache` (or set
    ``REPRO_CACHE_DIR``) to persist per-record outcomes and make repeated
    or interrupted full-scale sweeps resume instead of recompute; cache
    hits short-circuit scheduling entirely via the engine's stage hook.
    """
    scale = scale or active_scale()
    if cache is False:
        # Explicit opt-out (used by `repro bench` so timings never mix
        # cache hits with real solves), even when REPRO_CACHE_DIR is set.
        cache = None
    elif cache is None:
        from repro.experiments.cache import cache_from_env

        cache = cache_from_env()
    records = scale.records()
    codebook_spec = CodebookSpec.default(
        CodebookKey(
            lowres_bits=base_config.lowres_bits,
            acquisition_bits=base_config.acquisition_bits,
        )
    )

    grid: List[tuple] = []
    jobs: List[RecordJob] = []
    for cr in cr_values:
        config = base_config.for_cr(cr)
        for method in methods:
            grid.append((float(cr), config, method))
            for rec in records:
                jobs.append(
                    RecordJob(
                        record=rec,
                        config=config,
                        method=method,
                        codebook=(
                            codebook_spec
                            if resolve_method(method).uses_lowres
                            else None
                        ),
                        max_windows=scale.max_windows,
                    )
                )

    hooks = (cache.stage_hook(),) if cache is not None else ()
    engine = ExecutionEngine(executor=executor, hooks=hooks)
    outcomes = engine.run_jobs(jobs)

    points: List[CrSweepPoint] = []
    per_point = len(records)
    for k, (cr, config, method) in enumerate(grid):
        chunk = outcomes[k * per_point : (k + 1) * per_point]
        points.append(
            CrSweepPoint(
                cr_percent=cr,
                method=method,
                n_measurements=config.n_measurements,
                outcomes=tuple(chunk),
            )
        )
    return points
