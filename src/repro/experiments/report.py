"""Aggregate benchmark artifacts into a single reproduction report.

Every benchmark writes its table to ``benchmarks/results/<name>.txt``;
this module stitches those files into one Markdown document ordered like
the paper's evaluation, with a coverage checklist showing which artifacts
exist (i.e. which benches have been run) and which are still missing.

Used by ``repro-report`` style tooling and handy for regenerating the
baseline of EXPERIMENTS.md after a full-scale run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

__all__ = [
    "EXPECTED_ARTIFACTS",
    "BENCH_SWEEP_STEM",
    "BENCH_SOLVERS_STEM",
    "BENCH_ENCODE_STEM",
    "BENCH_GATEWAY_STEM",
    "BENCH_BSBL_STEM",
    "BENCH_PROFILE_STEM",
    "ReportSection",
    "bench_sweep_section",
    "bench_solvers_section",
    "bench_encode_section",
    "bench_gateway_section",
    "bench_bsbl_section",
    "bench_profile_section",
    "build_report",
    "write_report",
]

#: Stem of the optional engine-throughput artifact (`make bench-smoke`).
BENCH_SWEEP_STEM = "BENCH_sweep"

#: Stem of the optional solver-microbenchmark artifact (`repro bench`).
BENCH_SOLVERS_STEM = "BENCH_solvers"

#: Stem of the optional encoder-microbenchmark artifact (`repro bench`).
BENCH_ENCODE_STEM = "BENCH_encode"

#: Stem of the optional gateway load-test artifact (`repro loadtest`).
BENCH_GATEWAY_STEM = "BENCH_gateway"

#: Stem of the optional Bayesian-family comparison (`repro bench`).
BENCH_BSBL_STEM = "BENCH_bsbl"

#: Stem of the optional workspace/allocation profile (`repro profile`).
BENCH_PROFILE_STEM = "BENCH_profile"

#: (artifact stem, section heading) in paper order.
EXPECTED_ARTIFACTS: Tuple[Tuple[str, str], ...] = (
    ("fig2_lowres_window", "Fig. 2 — low-resolution window & bound area"),
    ("fig4_difference_pdf", "Fig. 4 — difference PDFs"),
    ("fig5_codebook_storage", "Fig. 5 — codebook storage"),
    ("fig6_lowres_compression", "Fig. 6 — low-res channel compression"),
    ("table1_overhead", "Table I — low-res channel overhead"),
    ("fig7_snr_prd_vs_cr", "Fig. 7 — SNR/PRD vs CR"),
    ("fig8_boxplots", "Fig. 8 — per-record box statistics"),
    ("fig9_example_reconstructions", "Fig. 9 — example reconstructions"),
    ("fig11_power_breakdown", "Fig. 11 — power breakdown"),
    ("headline_power_gains", "Section VI — fixed-SNR power gains"),
    ("ablation_basis", "Ablation — sparsifying basis"),
    ("ablation_ensemble", "Ablation — measurement ensemble"),
    ("ablation_solver", "Ablation — recovery algorithm"),
    ("ablation_lowres_depth", "Ablation — low-res channel depth"),
    ("ablation_coding", "Ablation — run-length vs plain Huffman"),
    ("ablation_entropy_coder", "Ablation — Huffman vs arithmetic coding"),
    ("ablation_structured_recovery", "Ablation — recovery levers"),
    ("ablation_power_sensitivity", "Ablation — power-model sensitivity"),
    ("ablation_sigma_safety", "Ablation — fidelity-radius safety factor"),
    ("extension_diagnostic_quality", "Extension — QRS-detection fidelity"),
    ("extension_link_robustness", "Extension — lossy-link robustness"),
    ("extension_adaptive_allocation", "Extension — adaptive channel allocation"),
    ("extension_phase_transition", "Extension — L1 phase transition"),
)


@dataclass(frozen=True)
class ReportSection:
    """One artifact's contribution to the report."""

    stem: str
    heading: str
    present: bool
    body: str

    def to_markdown(self) -> str:
        lines = [f"## {self.heading}", ""]
        if self.present:
            lines += ["```", self.body.rstrip(), "```", ""]
        else:
            lines += [
                f"_missing — run `pytest benchmarks/ --benchmark-only` to "
                f"generate `{self.stem}.txt`_",
                "",
            ]
        return "\n".join(lines)


def bench_sweep_section(results_dir: Path) -> str:
    """Markdown for the engine-throughput artifact, or "" when absent.

    ``BENCH_sweep.json`` is informational (written by ``make bench-smoke``
    / ``repro bench``); it does not count toward artifact coverage.
    """
    path = Path(results_dir) / f"{BENCH_SWEEP_STEM}.json"
    if not path.exists():
        return ""
    try:
        data = json.loads(path.read_text())
    except ValueError:
        return ""
    lines = [
        "## Engine throughput (`repro bench`)",
        "",
        f"- workers: {data.get('workers')} (cpu_count "
        f"{data.get('cpu_count')})",
        f"- windows: {data.get('windows_total')} "
        f"@ {data.get('parallel', {}).get('windows_per_sec', 0):.1f}"
        " windows/s",
    ]
    speedup = data.get("speedup_windows_per_sec")
    if speedup is not None:
        lines.append(
            f"- speedup over serial: {speedup:.2f}x "
            f"(results identical: {data.get('results_equal_serial')})"
        )
    stream = data.get("stream")
    if stream:
        lines += ["", "### Streaming gateway (`repro stream`)", ""]
        rate = stream.get("frames_per_sec")
        lines.append(
            f"- sessions: {stream.get('sessions')} x "
            f"{stream.get('duration_s')} s @ "
            f"{stream.get('erasure_rate', 0) * 100:.0f}% erasure"
        )
        lines.append(
            f"- frames: {stream.get('frames_total')}"
            + (f" @ {rate:.1f} frames/s" if rate is not None else "")
        )
        p50, p95 = stream.get("latency_p50_s"), stream.get("latency_p95_s")
        if p50 is not None and p95 is not None:
            lines.append(
                f"- latency: p50 {p50 * 1e3:.0f} ms / p95 {p95 * 1e3:.0f} ms"
            )
        lines.append(
            f"- loss handling: concealed {stream.get('concealed')}, "
            f"CS fallbacks {stream.get('cs_fallbacks')}, "
            f"queue drops {stream.get('queue_drops')}"
        )
    lines.append("")
    return "\n".join(lines)


def _backend_comparison_lines(by_backend, describe) -> list:
    """Markdown bullets comparing backend arms, [] when only one ran.

    ``describe(group)`` renders the arm's deviation metric — PRD for the
    solver artifact, byte identity for the encode artifact.
    """
    if not by_backend or len(by_backend) < 2:
        return []
    lines = ["", "### Backend comparison", ""]
    for label in sorted(by_backend):
        group = by_backend[label]
        min_speedup = group.get("min_speedup")
        speedup_txt = (
            f"min speedup {min_speedup:.2f}x"
            if min_speedup is not None
            else "min speedup n/a"
        )
        lines.append(
            f"- `{label}` ({group.get('cells')} cells): {speedup_txt}, "
            f"{describe(group)}"
        )
    return lines


def bench_solvers_section(results_dir: Path) -> str:
    """Markdown for the solver-microbenchmark artifact, or "" when absent.

    ``BENCH_solvers.json`` compares the batched+cached recovery engine
    against the legacy per-window loop (see ``docs/recovery.md``); like
    the sweep artifact it is informational and does not count toward
    coverage.
    """
    path = Path(results_dir) / f"{BENCH_SOLVERS_STEM}.json"
    if not path.exists():
        return ""
    try:
        data = json.loads(path.read_text())
    except ValueError:
        return ""
    lines = [
        "## Solver engines (`repro bench`)",
        "",
        "| solver | CR % | backend | loop w/s | batched w/s | speedup | max PRD dev % |",
        "|---|---|---|---|---|---|---|",
    ]
    for cell in data.get("cells", []):
        loop = cell.get("loop", {})
        batched = cell.get("batched", {})
        label = (
            f"{cell.get('backend', 'numpy')}/"
            f"{cell.get('precision', 'float64')}"
        )
        lines.append(
            f"| {cell.get('solver')} "
            f"| {cell.get('cr_percent', 0):.1f} "
            f"| {label} "
            f"| {loop.get('windows_per_sec', 0):.1f} "
            f"| {batched.get('windows_per_sec', 0):.1f} "
            f"| {cell.get('speedup', 0):.2f}x "
            f"| {cell.get('max_prd_dev_percent', 0):.2e} |"
        )
    min_speedup = data.get("min_speedup")
    if min_speedup is not None:
        lines += [
            "",
            f"- minimum exact-path speedup (batched+cached over "
            f"per-window loop): {min_speedup:.2f}x",
        ]
    lines += _backend_comparison_lines(
        data.get("by_backend"),
        lambda group: f"max PRD dev {group.get('max_prd_dev_percent', 0):.2e}%",
    )
    cache = data.get("problem_cache")
    if cache:
        lines.append(
            f"- operator cache: {cache.get('hits')} hits / "
            f"{cache.get('misses')} misses "
            f"(hit rate {cache.get('hit_rate', 0):.2f}, "
            f"{cache.get('size')} problems resident)"
        )
    lines.append("")
    return "\n".join(lines)


def bench_encode_section(results_dir: Path) -> str:
    """Markdown for the encoder-microbenchmark artifact, or "" when absent.

    ``BENCH_encode.json`` compares the batched encode engine and the
    vectorized synthesis kernels against their scalar reference loops
    (see ``docs/encoding.md``); informational, like the other bench
    artifacts.
    """
    path = Path(results_dir) / f"{BENCH_ENCODE_STEM}.json"
    if not path.exists():
        return ""
    try:
        data = json.loads(path.read_text())
    except ValueError:
        return ""
    lines = [
        "## Encode engine (`repro bench`)",
        "",
        "| method | CR % | backend | loop w/s | batched w/s | speedup | bytes identical |",
        "|---|---|---|---|---|---|---|",
    ]
    for cell in data.get("cells", []):
        loop = cell.get("loop", {})
        batched = cell.get("batched", {})
        label = (
            f"{cell.get('backend', 'numpy')}/"
            f"{cell.get('precision', 'float64')}"
        )
        lines.append(
            f"| {cell.get('method')} "
            f"| {cell.get('cr_percent', 0):.1f} "
            f"| {label} "
            f"| {loop.get('windows_per_sec', 0):.1f} "
            f"| {batched.get('windows_per_sec', 0):.1f} "
            f"| {cell.get('speedup', 0):.2f}x "
            f"| {cell.get('bytes_identical')} |"
        )
    min_speedup = data.get("min_encode_speedup")
    if min_speedup is not None:
        lines += [
            "",
            f"- minimum hybrid-encoder speedup (batched over per-window "
            f"loop): {min_speedup:.2f}x "
            f"(all bytes identical: {data.get('all_bytes_identical')})",
        ]
    lines += _backend_comparison_lines(
        data.get("by_backend"),
        lambda group: (
            f"byte-identical fraction "
            f"{group.get('min_identical_fraction', 1.0):.3f}, "
            f"max code delta {group.get('max_code_delta', 0)}"
        ),
    )
    synth = data.get("synth") or {}
    synth_cells = synth.get("cells", [])
    if synth_cells:
        lines += [
            "",
            "### Synthesis kernels",
            "",
            "| kernel | loop samples/s | vectorized samples/s | speedup | identical |",
            "|---|---|---|---|---|",
        ]
        for cell in synth_cells:
            loop = cell.get("loop", {})
            vec = cell.get("vectorized", {})
            lines.append(
                f"| {cell.get('kind')} "
                f"| {loop.get('samples_per_sec', 0):.0f} "
                f"| {vec.get('samples_per_sec', 0):.0f} "
                f"| {cell.get('speedup', 0):.1f}x "
                f"| {cell.get('identical')} |"
            )
    lines.append("")
    return "\n".join(lines)


def bench_gateway_section(results_dir: Path) -> str:
    """Markdown for the gateway load-test artifact, or "" when absent.

    ``BENCH_gateway.json`` is the ``repro loadtest`` output (see
    ``docs/streaming.md``); informational, like the other bench
    artifacts.
    """
    path = Path(results_dir) / f"{BENCH_GATEWAY_STEM}.json"
    if not path.exists():
        return ""
    try:
        data = json.loads(path.read_text())
    except ValueError:
        return ""
    scenario = data.get("scenario", {})
    mode = data.get("mode", {})
    shards = mode.get("shards", 1)
    runtime = (
        f"{shards} shards / {mode.get('transport')} transport"
        if shards and shards > 1
        else "single-process"
    )
    phase_names = "+".join(
        p.get("name", "?") for p in scenario.get("phases", [])
    )
    lines = [
        "## Gateway load test (`repro loadtest`)",
        "",
        f"- scenario: {scenario.get('patients')} patients x "
        f"{scenario.get('duration_s')} s [{phase_names}], "
        f"policy `{scenario.get('shed_policy')}`",
        f"- runtime: {runtime}, {mode.get('workers')} worker(s)",
    ]
    rate = data.get("frames_per_sec")
    lines.append(
        f"- completed: {data.get('windows_completed')} windows in "
        f"{data.get('wall_s', 0):.2f} s"
        + (f" ({rate:.1f} frames/s)" if rate is not None else "")
    )
    pcts = []
    for key, label in (
        ("latency_p50_s", "p50"),
        ("latency_p95_s", "p95"),
        ("latency_p99_s", "p99"),
    ):
        value = data.get(key)
        if value is not None:
            pcts.append(f"{label} {value * 1e3:.0f} ms")
    if pcts:
        lines.append(f"- frame latency (simulated clock): {' / '.join(pcts)}")
    lines.append(
        f"- loss handling: lost {data.get('frames_lost')} "
        f"(drops {data.get('queue_drops')}, rejects "
        f"{data.get('queue_rejects')}, shed {data.get('shed_frames')}), "
        f"concealed {data.get('concealed')}, "
        f"CS fallbacks {data.get('cs_fallbacks')}"
    )
    per_shard = data.get("per_shard")
    if per_shard:
        balance = ", ".join(
            f"`{name}` {stats.get('sessions')} sessions / "
            f"{stats.get('windows_completed')} windows"
            for name, stats in per_shard.items()
        )
        lines.append(f"- shard balance: {balance}")
    identical = data.get("identical_to_single")
    if identical is not None:
        baseline = data.get("baseline_single") or {}
        base_rate = baseline.get("frames_per_sec")
        lines.append(
            f"- identity vs single-process: {identical}"
            + (
                f" (baseline {base_rate:.1f} frames/s)"
                if base_rate is not None
                else ""
            )
        )
    lines.append("")
    return "\n".join(lines)


def bench_bsbl_section(results_dir: Path) -> str:
    """Markdown for the Bayesian-family comparison, or "" when absent.

    ``BENCH_bsbl.json`` compares the BSBL recovery family (including
    Bayesian de-quantization) against the paper's hybrid Eq. 1 solve on
    an SNR-vs-CR grid (see ``docs/recovery.md``); informational, like
    the other bench artifacts.
    """
    path = Path(results_dir) / f"{BENCH_BSBL_STEM}.json"
    if not path.exists():
        return ""
    try:
        data = json.loads(path.read_text())
    except ValueError:
        return ""
    lines = [
        "## Bayesian recovery family (`repro bench`)",
        "",
        "| method | CR % | mean SNR dB | mean PRD % |",
        "|---|---|---|---|",
    ]
    for cell in data.get("cells", []):
        lines.append(
            f"| {cell.get('method')} "
            f"| {cell.get('cr_percent', 0):.1f} "
            f"| {cell.get('mean_snr_db', 0):.2f} "
            f"| {cell.get('mean_prd_percent', 0):.2f} |"
        )
    for row in data.get("comparison", []):
        verdict = "beats" if row.get("bayes_wins") else "trails"
        lines.append(
            f"- CR {row.get('cr_percent', 0):.0f}%: "
            f"`{row.get('best_bayes_method')}` {verdict} hybrid by "
            f"{row.get('bayes_gain_db', 0):+.2f} dB"
        )
    agreement = data.get("agreement") or {}
    max_dev = agreement.get("max_abs_alpha_dev")
    if max_dev is not None:
        lines.append(
            f"- batched EM vs scalar oracle: max |dalpha| {max_dev:.2e} "
            f"(tolerance {agreement.get('tolerance', 0):.0e}, within: "
            f"{agreement.get('within_tolerance')})"
        )
    lines.append("")
    return "\n".join(lines)


def bench_profile_section(results_dir: Path) -> str:
    """Markdown for the workspace/allocation profile, or "" when absent.

    ``BENCH_profile.json`` compares every hot kernel with pooled
    workspaces against the same code on fresh allocations (see
    ``docs/performance.md``); informational, like the other bench
    artifacts.
    """
    path = Path(results_dir) / f"{BENCH_PROFILE_STEM}.json"
    if not path.exists():
        return ""
    try:
        data = json.loads(path.read_text())
    except ValueError:
        return ""
    lines = [
        "## Hot-path profile (`repro profile`)",
        "",
        "| kernel | baseline /s | workspace /s | speedup | alloc B/run | warm alloc B | reduction | max dev |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for cell in data.get("kernels", []):
        baseline = cell.get("baseline", {})
        workspace = cell.get("workspace", {})
        lines.append(
            f"| {cell.get('kernel')} ({cell.get('units', 'windows')}) "
            f"| {baseline.get('units_per_sec', 0):.1f} "
            f"| {workspace.get('units_per_sec', 0):.1f} "
            f"| {cell.get('speedup', 0):.2f}x "
            f"| {baseline.get('alloc_bytes', 0)} "
            f"| {workspace.get('alloc_bytes', 0)} "
            f"| {cell.get('alloc_reduction', 0):.0f}x "
            f"| {cell.get('max_abs_dev', 0):.1e} |"
        )
    reduction = data.get("min_alloc_reduction")
    if reduction is not None:
        lines += [
            "",
            f"- minimum solver-kernel allocation reduction (fresh over "
            f"warm workspaces): {reduction:.0f}x",
        ]
    max_dev = data.get("max_abs_dev")
    if max_dev is not None:
        lines.append(
            f"- worst reuse-vs-fresh output deviation: {max_dev:.1e} "
            f"(the exact path must report 0.0)"
        )
    pool = data.get("workspace_pool")
    if pool:
        lines.append(
            f"- workspace pool: {pool.get('leases')} leases "
            f"({pool.get('null_leases')} baseline), "
            f"{pool.get('workspaces_created')} workspaces created, "
            f"reuse fraction {pool.get('reuse_fraction', 0):.3f}"
        )
    cache = data.get("recovery_cache")
    if cache:
        lines.append(
            f"- operator cache: {cache.get('hits')} hits / "
            f"{cache.get('misses')} misses "
            f"(hit rate {cache.get('hit_rate', 0):.2f}, "
            f"operator-set hit rate "
            f"{cache.get('operator_hit_rate', 0):.2f})"
        )
    profiler = data.get("profiler") or []
    if profiler:
        lines += [
            "",
            "### Traced pass (tracemalloc cross-check)",
            "",
            "| kernel | calls | wall s | net alloc B | peak B |",
            "|---|---|---|---|---|",
        ]
        for row in profiler:
            lines.append(
                f"| {row.get('name')} "
                f"| {row.get('calls')} "
                f"| {row.get('wall_s', 0):.3f} "
                f"| {row.get('alloc_bytes')} "
                f"| {row.get('peak_bytes')} |"
            )
    lines.append("")
    return "\n".join(lines)


def build_report(results_dir: Path) -> Tuple[str, int, int]:
    """Render the Markdown report.

    Returns ``(markdown, present_count, expected_count)``.
    """
    results_dir = Path(results_dir)
    sections: List[ReportSection] = []
    for stem, heading in EXPECTED_ARTIFACTS:
        path = results_dir / f"{stem}.txt"
        if path.exists():
            sections.append(
                ReportSection(stem, heading, True, path.read_text())
            )
        else:
            sections.append(ReportSection(stem, heading, False, ""))

    present = sum(1 for s in sections if s.present)
    header = [
        "# Reproduction report",
        "",
        f"Artifacts present: {present}/{len(sections)} "
        f"(from `{results_dir}`)",
        "",
        "## Coverage checklist",
        "",
    ]
    for s in sections:
        mark = "x" if s.present else " "
        header.append(f"- [{mark}] {s.heading}")
    header.append("")

    body_parts = [s.to_markdown() for s in sections]
    for bench in (
        bench_sweep_section(results_dir),
        bench_solvers_section(results_dir),
        bench_encode_section(results_dir),
        bench_gateway_section(results_dir),
        bench_bsbl_section(results_dir),
        bench_profile_section(results_dir),
    ):
        if bench:
            body_parts.append(bench)
    return "\n".join(header) + "\n" + "\n".join(body_parts), present, len(sections)


def write_report(results_dir: Path, output: Optional[Path] = None) -> Path:
    """Write the report next to the results (default ``REPORT.md``)."""
    markdown, _, _ = build_report(results_dir)
    out = Path(output) if output else Path(results_dir) / "REPORT.md"
    out.write_text(markdown)
    return out
