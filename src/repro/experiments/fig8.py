"""Fig. 8 driver: per-record SNR box-plot statistics vs compression ratio.

The paper's Fig. 8 shows, for every CR, the distribution of SNR across the
48 records as a box plot (median, quartiles, whiskers at the most extreme
non-outlier points — the MATLAB ``boxplot`` convention, outliers beyond
1.5 IQR).  This driver computes the same five-number summaries from the
sweep so the benchmark can print them as rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import FrontEndConfig
from repro.experiments.runner import (
    CrSweepPoint,
    ExperimentScale,
    PAPER_CR_VALUES,
    sweep_compression_ratios,
)

__all__ = ["BoxStats", "Fig8Data", "run_fig8", "box_stats"]


@dataclass(frozen=True)
class BoxStats:
    """MATLAB-style box-plot summary of one SNR distribution."""

    cr_percent: float
    method: str
    median: float
    q25: float
    q75: float
    whisker_low: float
    whisker_high: float
    outliers: Tuple[float, ...]

    @property
    def iqr(self) -> float:
        """Inter-quartile range."""
        return self.q75 - self.q25


def box_stats(
    values: Sequence[float], cr_percent: float, method: str
) -> BoxStats:
    """Five-number summary with 1.5-IQR whiskers (MATLAB ``boxplot``)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one value")
    q25, med, q75 = np.percentile(arr, [25.0, 50.0, 75.0])
    iqr = q75 - q25
    lo_fence = q25 - 1.5 * iqr
    hi_fence = q75 + 1.5 * iqr
    inside = arr[(arr >= lo_fence) & (arr <= hi_fence)]
    outliers = tuple(float(v) for v in arr[(arr < lo_fence) | (arr > hi_fence)])
    return BoxStats(
        cr_percent=float(cr_percent),
        method=method,
        median=float(med),
        q25=float(q25),
        q75=float(q75),
        whisker_low=float(inside.min()),
        whisker_high=float(inside.max()),
        outliers=outliers,
    )


@dataclass(frozen=True)
class Fig8Data:
    """Box summaries for both methods at every swept CR."""

    normal: Tuple[BoxStats, ...]
    hybrid: Tuple[BoxStats, ...]

    def spread_ratio(self) -> float:
        """Mean IQR of normal over mean IQR of hybrid.

        Purely descriptive: note that when normal CS collapses at high CR
        its per-record SNRs bunch tightly around ~0 dB, so a small ratio
        does not mean normal CS is *better* — read it with the medians.
        """
        normal_iqr = float(np.mean([b.iqr for b in self.normal]))
        hybrid_iqr = float(np.mean([b.iqr for b in self.hybrid]))
        if hybrid_iqr == 0:
            return float("inf")
        return normal_iqr / hybrid_iqr

    def hybrid_floor_beats_normal_ceiling_at(self, cr_percent: float) -> bool:
        """Fig. 8's starkest visual: at aggressive CR the *worst* hybrid
        record (lower whisker) still beats the *best* normal record
        (upper whisker)."""
        hybrid = next(b for b in self.hybrid if b.cr_percent == cr_percent)
        normal = next(b for b in self.normal if b.cr_percent == cr_percent)
        hybrid_floor = min(
            [hybrid.whisker_low, *hybrid.outliers]
        )
        normal_ceiling = max([normal.whisker_high, *normal.outliers])
        return hybrid_floor > normal_ceiling


def run_fig8(
    base_config: Optional[FrontEndConfig] = None,
    cr_values: Sequence[float] = PAPER_CR_VALUES,
    *,
    scale: Optional[ExperimentScale] = None,
    points: Optional[Sequence[CrSweepPoint]] = None,
) -> Fig8Data:
    """Compute the Fig. 8 box statistics.

    Pass ``points`` to reuse an existing Fig. 7 sweep instead of re-running
    the solvers.
    """
    if points is None:
        config = base_config or FrontEndConfig()
        points = sweep_compression_ratios(
            config, cr_values, methods=("hybrid", "normal"), scale=scale
        )
    by_method: Dict[str, List[BoxStats]] = {"normal": [], "hybrid": []}
    for point in points:
        snrs = list(point.per_record_snrs.values())
        by_method[point.method].append(
            box_stats(snrs, point.cr_percent, point.method)
        )
    for method in by_method:
        by_method[method].sort(key=lambda b: b.cr_percent)
    return Fig8Data(
        normal=tuple(by_method["normal"]), hybrid=tuple(by_method["hybrid"])
    )
