"""Runtime array contracts for the pipeline's public entry points.

The lint side of ``repro.devtools`` catches what is statically visible;
this module covers the rest at the API boundary: a malformed window or a
wrong-dtype measurement vector should fail *here* with a message naming
the argument, not three frames deep inside a NumPy broadcast.

Three assertion helpers — :func:`check_shape`, :func:`check_dtype`,
:func:`check_finite` — validate one array each and return it as an
``ndarray`` so call sites can chain them.  The :func:`array_contract`
decorator applies the same checks declaratively to named parameters::

    @array_contract(x=dict(shape=("n",), dtype="floating", finite=True))
    def measure(self, x): ...

Shape specs are tuples whose entries are exact ints, ``None`` wildcards,
or string symbols; symbols must agree across every parameter of one
call (``("m", "n")`` and ``("n",)`` tie the two arguments together).

Checks raise :class:`ContractError` and can be disabled wholesale for
squeezing the last microseconds out of a production deployment by
setting ``REPRO_DISABLE_CONTRACTS=1`` in the environment.
"""

from __future__ import annotations

import functools
import inspect
import os
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "ContractError",
    "contracts_enabled",
    "check_shape",
    "check_dtype",
    "check_finite",
    "array_contract",
]

ShapeSpec = Sequence[Union[int, str, None]]
DtypeSpec = Union[str, type, np.dtype, Tuple[Union[str, type, np.dtype], ...]]


class ContractError(TypeError, ValueError):
    """An array violated a declared contract.

    Subclasses both :class:`TypeError` and :class:`ValueError` so call
    sites that historically raised either keep satisfying their callers'
    ``except`` clauses (and the existing test suite) unchanged.
    """


def contracts_enabled() -> bool:
    """Whether contract checks run (``REPRO_DISABLE_CONTRACTS`` opts out)."""
    return os.environ.get("REPRO_DISABLE_CONTRACTS", "") not in (
        "1",
        "true",
        "yes",
    )


def _fmt_shape(spec: ShapeSpec) -> str:
    inner = ", ".join("*" if s is None else str(s) for s in spec)
    if len(spec) == 1:
        inner += ","
    return "(" + inner + ")"


def check_shape(
    arr: Any,
    shape: ShapeSpec,
    *,
    name: str = "array",
    dims: Optional[Dict[str, int]] = None,
) -> np.ndarray:
    """Assert ``arr`` has the given shape; return it as an ``ndarray``.

    ``shape`` entries are exact ints, ``None`` wildcards, or string
    symbols.  When ``dims`` (a mutable mapping) is passed, symbols bind
    on first sight and must match on every later use, which ties shapes
    together across arguments (``("m", "n")`` vs ``("n",)``).
    """
    a = np.asarray(arr)
    if not contracts_enabled():
        return a
    spec = tuple(shape)
    if a.ndim != len(spec):
        raise ContractError(
            f"{name}: expected a {len(spec)}-D array with shape "
            f"{_fmt_shape(spec)}, got {a.ndim}-D with shape {a.shape}"
        )
    for axis, (want, got) in enumerate(zip(spec, a.shape)):
        if want is None:
            continue
        if isinstance(want, str):
            if dims is None:
                continue
            bound = dims.setdefault(want, got)
            if bound != got:
                raise ContractError(
                    f"{name}: axis {axis} has size {got} but dimension "
                    f"{want!r} was already bound to {bound}"
                )
        elif got != want:
            raise ContractError(
                f"{name}: expected shape {_fmt_shape(spec)}, got {a.shape} "
                f"(axis {axis}: {got} != {want})"
            )
    return a


def check_dtype(arr: Any, kind: DtypeSpec, *, name: str = "array") -> np.ndarray:
    """Assert ``arr``'s dtype matches; return it as an ``ndarray``.

    ``kind`` may be the abstract kinds ``"integer"``, ``"floating"``,
    ``"inexact"``, ``"number"`` or ``"bool"``, any concrete
    ``np.dtype``-coercible value, or a tuple of alternatives.  The input
    array's shape is preserved (no cast is performed — violations raise).
    """
    a = np.asarray(arr)
    if not contracts_enabled():
        return a
    kinds = kind if isinstance(kind, tuple) else (kind,)
    abstract = {
        "integer": np.integer,
        "floating": np.floating,
        "inexact": np.inexact,
        "number": np.number,
        "bool": np.bool_,
    }
    for k in kinds:
        if isinstance(k, str) and k in abstract:
            if np.issubdtype(a.dtype, abstract[k]):
                return a
        elif a.dtype == np.dtype(k):  # type: ignore[arg-type]
            return a
    wanted = ", ".join(str(k) for k in kinds)
    raise ContractError(f"{name}: expected dtype {wanted}, got {a.dtype}")


def check_finite(arr: Any, *, name: str = "array") -> np.ndarray:
    """Assert ``arr`` holds no NaN/Inf; return it as an ``ndarray``.

    Integer and boolean arrays pass trivially; the array's shape is
    never changed.
    """
    a = np.asarray(arr)
    if not contracts_enabled():
        return a
    if a.size and np.issubdtype(a.dtype, np.inexact):
        finite = np.isfinite(a)
        if not finite.all():
            bad = int(a.size - int(np.count_nonzero(finite)))
            raise ContractError(
                f"{name}: contains {bad} non-finite value(s) (NaN or Inf)"
            )
    return a


def array_contract(
    **specs: Mapping[str, Any],
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator applying contracts to named array parameters.

    Each keyword names a parameter of the wrapped function and maps to a
    spec dict with any of the keys ``shape`` (see :func:`check_shape`),
    ``ndim`` (int), ``dtype`` (see :func:`check_dtype`) and ``finite``
    (bool).  Shape symbols are shared across all parameters of a single
    call.  ``None`` arguments are skipped so optional parameters stay
    optional; validated arguments reach the function as ``ndarray``\\ s.
    """
    def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
        sig = inspect.signature(func)
        unknown = set(specs) - set(sig.parameters)
        if unknown:
            raise TypeError(
                f"array_contract on {func.__qualname__}: unknown "
                f"parameter(s) {sorted(unknown)}"
            )

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not contracts_enabled():
                return func(*args, **kwargs)
            bound = sig.bind(*args, **kwargs)
            dims: Dict[str, int] = {}
            for pname, spec in specs.items():
                if pname not in bound.arguments:
                    continue
                value = bound.arguments[pname]
                if value is None:
                    continue
                if "shape" in spec:
                    value = check_shape(
                        value, spec["shape"], name=pname, dims=dims
                    )
                elif "ndim" in spec:
                    value = np.asarray(value)
                    if value.ndim != spec["ndim"]:
                        raise ContractError(
                            f"{pname}: expected a {spec['ndim']}-D array, "
                            f"got {value.ndim}-D with shape {value.shape}"
                        )
                if "dtype" in spec:
                    value = check_dtype(value, spec["dtype"], name=pname)
                if spec.get("finite"):
                    value = check_finite(value, name=pname)
                bound.arguments[pname] = value
            return func(*bound.args, **bound.kwargs)

        return wrapper

    return decorate
