"""Developer tooling: static analysis (``reprolint``) + runtime contracts.

``repro.devtools`` is intentionally import-light — nothing in the
pipeline's hot paths depends on it except the tiny
:mod:`~repro.devtools.contracts` assertions, so shipping builds can drop
the lint machinery entirely.

* :mod:`repro.devtools.reprolint` — the AST lint framework and the
  RL001–RL007 rule set (``repro lint`` / ``make lint``).
* :mod:`repro.devtools.contracts` — ``check_shape`` / ``check_dtype`` /
  ``check_finite`` assertions and the ``array_contract`` decorator used
  on the public entry points.
"""

from __future__ import annotations

from repro.devtools.contracts import (
    ContractError,
    array_contract,
    check_dtype,
    check_finite,
    check_shape,
    contracts_enabled,
)

__all__ = [
    "ContractError",
    "array_contract",
    "check_dtype",
    "check_finite",
    "check_shape",
    "contracts_enabled",
]
