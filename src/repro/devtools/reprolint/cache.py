"""Content-hash keyed result cache for the lint runner.

A warm ``repro lint src/`` should pay for parsing only the files that
changed.  The cache maps ``sha256(relative path + file bytes)`` to the
file's per-file findings *and* its :class:`ModuleSummary`, so a hit
skips decoding, parsing and every file-scope rule — the program pass
then runs over cached summaries, which is cheap.

Invalidation is by construction, never by mtime: the key covers the
file content (suppression comments included), and the store's
*signature* covers the analyzer itself — a digest of every module in
``repro.devtools.reprolint`` plus the effective file-rule selection.
Editing a rule, adding one, or changing ``--select``/``--ignore`` lands
in a different cache file; stale stores are simply never read.  Writes
are atomic (tmp + rename) so parallel CI jobs at worst waste a write.

Hit/miss counters are exposed on the instance — the test suite asserts
warm-run speedup through them rather than wall-clock.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.devtools.reprolint.core import Finding
from repro.devtools.reprolint.project import ModuleSummary

__all__ = ["LintCache", "analyzer_signature", "content_key", "CACHE_SCHEMA"]

CACHE_SCHEMA = 1

_ANALYZER_DIGEST: Optional[str] = None


def analyzer_signature(rule_ids: Sequence[str]) -> str:
    """Digest of the analyzer source plus the effective file-rule set.

    Two runs share cached results only when every reprolint module is
    byte-identical and the same file rules are enabled.
    """
    global _ANALYZER_DIGEST
    if _ANALYZER_DIGEST is None:
        digest = hashlib.sha256()
        package_dir = Path(__file__).parent
        for module in sorted(package_dir.glob("*.py")):
            digest.update(module.name.encode())
            digest.update(module.read_bytes())
        _ANALYZER_DIGEST = digest.hexdigest()
    tail = hashlib.sha256(
        ("\0".join(sorted(rule_ids)) + "|" + str(CACHE_SCHEMA)).encode()
    ).hexdigest()
    return hashlib.sha256((_ANALYZER_DIGEST + tail).encode()).hexdigest()


def content_key(path: Path, data: bytes) -> str:
    """The cache key for one file: relative-ish path + raw bytes."""
    digest = hashlib.sha256()
    digest.update(str(path).encode())
    digest.update(b"\0")
    digest.update(data)
    return digest.hexdigest()


class LintCache:
    """One JSON store per analyzer signature, with hit accounting."""

    def __init__(self, cache_dir: Path, signature: str) -> None:
        self.cache_dir = Path(cache_dir)
        self.signature = signature
        self.path = self.cache_dir / f"reprolint-{signature[:16]}.json"
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, dict] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if (
            raw.get("schema") != CACHE_SCHEMA
            or raw.get("signature") != self.signature
        ):
            return
        entries = raw.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def get(
        self, key: str
    ) -> Optional[Tuple[List[Finding], Optional[ModuleSummary]]]:
        """Cached ``(findings, summary)`` for ``key``, or None."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        findings = [Finding(**f) for f in entry.get("findings", [])]
        summary_data = entry.get("summary")
        summary = (
            ModuleSummary.from_dict(summary_data)
            if summary_data is not None
            else None
        )
        return findings, summary

    def put(
        self,
        key: str,
        findings: Sequence[Finding],
        summary: Optional[ModuleSummary],
    ) -> None:
        """Store one file's pass-1 results."""
        self._entries[key] = {
            "findings": [
                {
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "rule_id": f.rule_id,
                    "message": f.message,
                }
                for f in findings
            ],
            "summary": summary.to_dict() if summary is not None else None,
        }
        self._dirty = True

    def save(self) -> None:
        """Atomically persist the store (no-op when nothing changed)."""
        if not self._dirty:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "schema": CACHE_SCHEMA,
                "signature": self.signature,
                "entries": self._entries,
            },
            sort_keys=True,
        )
        fd, tmp = tempfile.mkstemp(
            dir=str(self.cache_dir), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp, self.path)
        except OSError:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        self._dirty = False

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters plus store size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
        }
