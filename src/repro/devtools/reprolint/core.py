"""``reprolint`` core: findings, the rule registry, suppressions, runner.

The framework is deliberately small: a rule is a class with a
``rule_id``, a one-line ``title``, a ``rationale`` tying it to the
paper's reproducibility requirements, and a ``check(ctx)`` generator
over :class:`Finding` objects.  Rules register themselves with the
:func:`register` decorator; the runner instantiates every registered
rule (or a selected subset), parses each file once into a shared
:class:`FileContext`, and filters the combined findings through the
per-line / per-file suppression comments::

    x = np.random.rand(3)  # reprolint: disable=RL001  -- fixture needs raw draws
    # reprolint: disable-file=RL007

``disable`` acts on the physical line carrying the comment;
``disable-file`` acts on the whole file from any line.  Rule lists are
comma-separated and ``all`` disables every rule.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "register",
    "all_rule_ids",
    "get_rules",
    "iter_python_files",
    "read_source",
    "decode_failure_finding",
    "lint_source",
    "lint_paths",
]

#: Packages whose inner loops feed the paper's headline figures; some
#: rules (RL005) only apply inside them.
HOT_PACKAGES = frozenset({"sensing", "recovery", "coding"})

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: a rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        """The conventional one-line ``path:line:col: ID message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable mapping (stable keys, used by the reporter)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


def _parse_suppressions(
    source: str,
) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Extract ``(per-line, per-file)`` suppression sets from comments."""
    line_disables: Dict[int, Set[str]] = {}
    file_disables: Set[str] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return line_disables, file_disables
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if match is None:
            continue
        ids = {part.strip().upper() for part in match.group("rules").split(",")}
        if match.group("kind") == "disable-file":
            file_disables |= ids
        else:
            line_disables.setdefault(tok.start[0], set()).update(ids)
    return line_disables, file_disables


class FileContext:
    """Everything a rule needs about one source file, parsed once.

    Attributes
    ----------
    path:
        The file's path as given to the runner.
    source:
        Raw module text.
    tree:
        The parsed :mod:`ast` module node.
    numpy_aliases:
        Names the module binds to the ``numpy`` package (``np`` …).
    nprandom_aliases:
        Names bound directly to ``numpy.random``.
    """

    def __init__(self, path: Path, source: str) -> None:
        self.path = Path(path)
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        self.line_disables, self.file_disables = _parse_suppressions(source)
        self.numpy_aliases: Set[str] = set()
        self.nprandom_aliases: Set[str] = set()
        self.legacy_random_imports: Dict[str, ast.ImportFrom] = {}
        self._collect_numpy_aliases()

    def _collect_numpy_aliases(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        self.numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "numpy.random" and alias.asname:
                        self.nprandom_aliases.add(alias.asname)
                    elif alias.name == "numpy.random":
                        self.numpy_aliases.add("numpy")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self.nprandom_aliases.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        self.legacy_random_imports[alias.asname or alias.name] = node

    @property
    def is_hot_path(self) -> bool:
        """True when the file lives in a hot package (see HOT_PACKAGES)."""
        return any(part in HOT_PACKAGES for part in self.path.parts)

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether a suppression comment covers this finding."""
        for ids in (self.file_disables, self.line_disables.get(finding.line, ())):
            if finding.rule_id in ids or "ALL" in ids:
                return True
        return False


class Rule:
    """Base class for lint rules; subclass and :func:`register`.

    ``scope`` partitions the registry between the two runner passes:
    ``"file"`` rules see one :class:`FileContext` at a time (and are
    cacheable per file), ``"program"`` rules run once over the whole
    :class:`~repro.devtools.reprolint.project.ProjectModel` after every
    file has been summarized.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""
    scope: str = "file"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file (override in subclasses)."""
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY and _REGISTRY[cls.rule_id] is not cls:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rule_ids() -> List[str]:
    """Registered rule ids, sorted."""
    return sorted(_REGISTRY)


def get_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Rule]:
    """Instantiate the selected rules (default: every registered rule)."""
    chosen = {s.upper() for s in select} if select else set(_REGISTRY)
    dropped = {s.upper() for s in ignore} if ignore else set()
    unknown = (chosen | dropped) - set(_REGISTRY)
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return [_REGISTRY[rid]() for rid in sorted(chosen - dropped)]


def read_source(path: Path) -> str:
    """Decode one source file the way the Python tokenizer would.

    Honors a UTF-8 BOM and PEP 263 ``# -*- coding: ... -*-`` declarations
    (the plain ``read_text(encoding="utf-8")`` the runner used before
    crashed the whole run on either).  Decode failures — an unknown
    codec name, or bytes invalid under the declared codec — are raised
    for the caller to convert into an ``RL000`` finding via
    :func:`decode_failure_finding`.
    """
    data = Path(path).read_bytes()
    try:
        encoding, _ = tokenize.detect_encoding(io.BytesIO(data).readline)
        source = data.decode(encoding)
    except (LookupError, UnicodeDecodeError, SyntaxError) as exc:
        raise UnicodeDecodeError(
            "reprolint", data[:64], 0, 1, f"cannot decode {path}: {exc}"
        ) from exc
    # detect_encoding leaves the BOM in place for plain utf-8; strip it
    # so ast.parse does not choke on the leading U+FEFF.
    return source.lstrip("\ufeff")


def decode_failure_finding(path: Path, exc: Exception) -> Finding:
    """The ``RL000`` finding for a file that cannot be decoded."""
    reason = getattr(exc, "reason", None) or str(exc)
    return Finding(
        path=str(path),
        line=1,
        col=0,
        rule_id="RL000",
        message=f"file cannot be decoded: {reason}",
    )


def lint_source(
    source: str, path: Path, rules: Sequence[Rule]
) -> List[Finding]:
    """Run the file-scope ``rules`` over one module's text.

    Suppression comments are honored; program-scope rules in ``rules``
    are skipped (they need a whole project, see
    :func:`repro.devtools.reprolint.runner.run_lint`).
    """
    try:
        ctx = FileContext(Path(path), source)
    except SyntaxError as exc:
        return [
            Finding(
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule_id="RL000",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    findings = [
        f
        for rule in rules
        if rule.scope == "file"
        for f in rule.check(ctx)
        if not ctx.is_suppressed(f)
    ]
    return sorted(findings)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """All ``.py`` files under ``paths``, skipping caches and hidden dirs."""
    for path in paths:
        path = Path(path)
        if path.is_file():
            yield path
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                parts = sub.relative_to(path).parts
                if any(p.startswith(".") or p == "__pycache__" for p in parts):
                    continue
                yield sub
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")


def lint_paths(
    paths: Iterable[Path],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    layers=None,
) -> List[Finding]:
    """Lint every Python file under ``paths``; the main library entry.

    Runs both passes — per-file rules and the whole-program RL1xx family
    over the project model built from exactly these files — serially and
    without the result cache (the CLI runner adds caching and ``--jobs``;
    see :func:`repro.devtools.reprolint.runner.run_lint`).  ``layers``
    overrides the import-layering config for RL100 (tests use this to
    lint fixture projects against fixture layers).
    """
    from repro.devtools.reprolint.runner import run_lint

    return run_lint(
        paths, select=select, ignore=ignore, use_cache=False, layers=layers
    ).findings
