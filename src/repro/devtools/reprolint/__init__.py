"""``reprolint`` — domain-aware static analysis for the CS pipeline.

Two passes over the tree: per-file rules (RL001–RL007) against a
:class:`FileContext`, then the whole-program RL1xx family — import
layering, cycles, executor-payload picklability, shared-state safety,
contract/doc drift — against a :class:`ProjectModel` assembled from
per-file :class:`ModuleSummary` records.  The runner adds a
content-hash result cache, a multiprocess pass 1 (``--jobs``) and
git-diff report scoping (``--changed``); reporters cover human text,
versioned JSON and SARIF 2.1.0.

Public surface: the rule framework (:class:`Rule`,
:class:`ProgramRule`, :func:`register`, :func:`get_rules`,
:func:`all_rule_ids`), the runners (:func:`lint_paths`,
:func:`lint_source`, :func:`run_lint`, :func:`iter_python_files`), the
project model (:class:`ProjectModel`, :class:`ModuleSummary`,
:class:`LayerConfig`, :data:`REPRO_LAYERS`), the :class:`Finding`
record, and the three reporters.  Importing the package loads both
built-in rule sets into the registry.

Run it as ``repro lint <paths> [--strict] [--jobs N] [--changed]
[--format json|sarif]`` or through ``make lint`` / ``make lint-fast``.
"""

from __future__ import annotations

from repro.devtools.reprolint.core import (
    FileContext,
    Finding,
    Rule,
    all_rule_ids,
    get_rules,
    iter_python_files,
    lint_paths,
    lint_source,
    read_source,
    register,
)
from repro.devtools.reprolint import rules as _builtin_rules  # noqa: F401
from repro.devtools.reprolint import rules_program as _program_rules  # noqa: F401
from repro.devtools.reprolint.graph import LayerConfig, REPRO_LAYERS
from repro.devtools.reprolint.project import ModuleSummary, ProjectModel
from repro.devtools.reprolint.rules_program import ProgramRule
from repro.devtools.reprolint.runner import LintRun, run_lint
from repro.devtools.reprolint.reporters import (
    JSON_SCHEMA_VERSION,
    SARIF_VERSION,
    render_json,
    render_sarif,
    render_text,
)

__all__ = [
    "FileContext",
    "Finding",
    "LayerConfig",
    "LintRun",
    "ModuleSummary",
    "ProgramRule",
    "ProjectModel",
    "REPRO_LAYERS",
    "Rule",
    "all_rule_ids",
    "get_rules",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "read_source",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "run_lint",
    "JSON_SCHEMA_VERSION",
    "SARIF_VERSION",
]
