"""``reprolint`` — domain-aware static analysis for the CS pipeline.

Public surface: the rule framework (:class:`Rule`, :func:`register`,
:func:`get_rules`, :func:`all_rule_ids`), the runner
(:func:`lint_paths`, :func:`lint_source`, :func:`iter_python_files`),
the :class:`Finding` record, and the two reporters.  Importing the
package loads the built-in RL001–RL007 rule set into the registry.

Run it as ``repro lint <paths> [--strict] [--format json]`` or through
``make lint``.
"""

from __future__ import annotations

from repro.devtools.reprolint.core import (
    FileContext,
    Finding,
    Rule,
    all_rule_ids,
    get_rules,
    iter_python_files,
    lint_paths,
    lint_source,
    register,
)
from repro.devtools.reprolint import rules as _builtin_rules  # noqa: F401
from repro.devtools.reprolint.reporters import (
    JSON_SCHEMA_VERSION,
    render_json,
    render_text,
)

__all__ = [
    "FileContext",
    "Finding",
    "Rule",
    "all_rule_ids",
    "get_rules",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "register",
    "render_json",
    "render_text",
    "JSON_SCHEMA_VERSION",
]
