"""Pass 1 of the whole-program analyzer: per-module summaries.

The RL1xx rule family (:mod:`repro.devtools.reprolint.rules_program`)
reasons about facts that span files — who imports whom, which values
reach an executor boundary, who mutates another module's state.  This
module extracts everything those rules need from *one* file into a
:class:`ModuleSummary`: a small, JSON-serializable record that the
result cache can persist and a worker process can ship back whole.
Pass 2 assembles the summaries into a :class:`ProjectModel`, which adds
the cross-file resolution the per-file pass cannot do (import-alias →
defining module, layer assignment, the import graph).

Everything here is approximate by design — a static over/under-
approximation of Python's dynamic semantics, tuned so the findings it
feeds stay actionable: name chains are resolved through literal import
statements only, executor payloads are matched syntactically at
``run_tasks``/``submit`` call sites, and mutation verbs are a fixed
list of container-mutator method names.
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.devtools.reprolint.core import FileContext

__all__ = [
    "ImportRecord",
    "MutationSite",
    "PayloadSuspect",
    "FunctionFacts",
    "ModuleSummary",
    "ProjectModel",
    "module_name_for",
    "summarize_module",
    "EXECUTOR_METHODS",
    "MUTATOR_METHODS",
]

#: Method names treated as executor submission sites.  ``run_tasks`` is
#: the :class:`repro.runtime.executors.Executor` contract; ``submit`` and
#: ``map`` cover raw ``concurrent.futures`` pools.
EXECUTOR_METHODS = frozenset({"run_tasks", "submit", "map"})

#: Container-mutator method names: calling one of these on another
#: module's global is a cross-module state mutation (RL103).
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)

#: Module-level calls to these constructors bind immutable values, so
#: the binding is not mutable-state (everything else conservatively is).
_IMMUTABLE_CTORS = frozenset(
    {
        "bool",
        "bytes",
        "complex",
        "float",
        "frozenset",
        "int",
        "namedtuple",
        "property",
        "range",
        "slice",
        "str",
        "tuple",
        "compile",  # re.compile: compiled patterns are immutable
        "TypeVar",
    }
)


@dataclass(frozen=True)
class ImportRecord:
    """One import binding: ``import module`` or ``from module import name``.

    ``name`` is ``None`` for plain ``import module [as asname]``;
    ``toplevel`` distinguishes module-level imports (which create import-
    time edges, hence cycles) from lazy function-level ones.
    """

    module: str
    name: Optional[str]
    asname: Optional[str]
    line: int
    col: int
    toplevel: bool

    @property
    def bound_name(self) -> str:
        """The local name this import binds."""
        if self.asname:
            return self.asname
        if self.name:
            return self.name
        return self.module.split(".")[0]


@dataclass(frozen=True)
class MutationSite:
    """A mutation whose base resolves through a name chain.

    ``chain`` is the dotted access path up to (excluding) the mutation —
    ``opcache.PROBLEM_CACHE.clear()`` records ``("opcache",
    "PROBLEM_CACHE")`` with ``verb="clear"``; ``CACHE["k"] = v`` records
    ``("CACHE",)`` with ``verb="subscript assignment"``.
    """

    chain: Tuple[str, ...]
    verb: str
    line: int
    col: int


@dataclass(frozen=True)
class PayloadSuspect:
    """A suspicious value at an executor submission site (RL102)."""

    line: int
    col: int
    detail: str


@dataclass(frozen=True)
class FunctionFacts:
    """What RL104 needs to know about one module/class-level function."""

    name: str
    line: int
    col: int
    public: bool
    has_doc: bool
    doc_has_shape: bool
    check_shape_chains: Tuple[Tuple[str, ...], ...]


@dataclass
class ModuleSummary:
    """Every program-level fact extracted from one module.

    JSON-serializable via :meth:`to_dict`/:meth:`from_dict` so the lint
    cache can persist it and skip re-parsing unchanged files entirely.
    """

    module: str
    path: str
    imports: List[ImportRecord] = field(default_factory=list)
    mutable_globals: Dict[str, int] = field(default_factory=dict)
    mutations: List[MutationSite] = field(default_factory=list)
    payload_suspects: List[PayloadSuspect] = field(default_factory=list)
    functions: List[FunctionFacts] = field(default_factory=list)
    line_disables: Dict[int, List[str]] = field(default_factory=dict)
    file_disables: List[str] = field(default_factory=list)
    #: Module declares ``__backend_seam__ = True`` at top level: it has
    #: been ported onto the :mod:`repro.backend` seam and RL105 holds it
    #: to the no-direct-array-library-imports discipline.
    backend_seam: bool = False

    def to_dict(self) -> Dict[str, object]:
        """A plain-JSON mapping (tuples become lists)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ModuleSummary":
        """Rebuild a summary from :meth:`to_dict` output."""
        return cls(
            module=str(data["module"]),
            path=str(data["path"]),
            imports=[ImportRecord(**rec) for rec in data.get("imports", [])],
            mutable_globals={
                str(k): int(v)
                for k, v in dict(data.get("mutable_globals", {})).items()
            },
            mutations=[
                MutationSite(
                    chain=tuple(rec["chain"]),
                    verb=rec["verb"],
                    line=rec["line"],
                    col=rec["col"],
                )
                for rec in data.get("mutations", [])
            ],
            payload_suspects=[
                PayloadSuspect(**rec) for rec in data.get("payload_suspects", [])
            ],
            functions=[
                FunctionFacts(
                    name=rec["name"],
                    line=rec["line"],
                    col=rec["col"],
                    public=rec["public"],
                    has_doc=rec["has_doc"],
                    doc_has_shape=rec["doc_has_shape"],
                    check_shape_chains=tuple(
                        tuple(c) for c in rec["check_shape_chains"]
                    ),
                )
                for rec in data.get("functions", [])
            ],
            line_disables={
                int(k): list(v)
                for k, v in dict(data.get("line_disables", {})).items()
            },
            file_disables=list(data.get("file_disables", [])),
            backend_seam=bool(data.get("backend_seam", False)),
        )

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether a suppression comment covers ``rule_id`` at ``line``."""
        for ids in (self.file_disables, self.line_disables.get(line, ())):
            if rule_id in ids or "ALL" in ids:
                return True
        return False


def module_name_for(path: Path) -> str:
    """The dotted module name for a source file.

    Walks up while the parent directory is a package (has an
    ``__init__.py``), so ``src/repro/stream/driver.py`` maps to
    ``repro.stream.driver`` no matter what the runner was given as a
    root.  A package ``__init__.py`` maps to the package name itself.
    """
    path = Path(path).resolve()
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    name = ".".join(reversed(parts))
    if name.endswith(".__init__"):
        name = name[: -len(".__init__")]
    return name


def _dotted_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``; None for non-name bases."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _is_mutable_binding(value: ast.AST) -> bool:
    """Whether a module-level assignment binds a mutable object."""
    if isinstance(
        value,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(value, ast.Call):
        chain = _dotted_chain(value.func)
        if chain is None:
            return True
        return chain[-1] not in _IMMUTABLE_CTORS
    return False


class _ImportCollector(ast.NodeVisitor):
    """Collects every import statement, tagging module-level ones."""

    def __init__(self, toplevel_stmts: Sequence[ast.stmt]) -> None:
        self.records: List[ImportRecord] = []
        # Module-level includes imports guarded one statement down by
        # try/if at the top level (the optional-dependency idiom): they
        # still execute at import time.
        self._toplevel_nodes: Set[int] = set()
        for stmt in toplevel_stmts:
            self._mark(stmt)

    def _mark(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            self._toplevel_nodes.add(id(stmt))
        elif isinstance(stmt, (ast.If, ast.Try)):
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.stmt):
                    self._mark(sub)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.records.append(
                ImportRecord(
                    module=alias.name,
                    name=None,
                    asname=alias.asname,
                    line=node.lineno,
                    col=node.col_offset,
                    toplevel=id(node) in self._toplevel_nodes,
                )
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            # Relative imports are rare in this tree; skip rather than
            # mis-resolve them.
            return
        for alias in node.names:
            self.records.append(
                ImportRecord(
                    module=node.module,
                    name=alias.name,
                    asname=alias.asname,
                    line=node.lineno,
                    col=node.col_offset,
                    toplevel=id(node) in self._toplevel_nodes,
                )
            )


def _collect_mutations(tree: ast.Module) -> List[MutationSite]:
    """Every syntactic mutation site whose base is a name chain."""
    sites: List[MutationSite] = []

    def record(base: ast.AST, verb: str, node: ast.AST) -> None:
        chain = _dotted_chain(base)
        if chain is not None:
            sites.append(
                MutationSite(
                    chain=chain,
                    verb=verb,
                    line=node.lineno,
                    col=node.col_offset,
                )
            )

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATOR_METHODS
            ):
                record(func.value, f"{func.attr}()", node)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript):
                    record(target.value, "subscript assignment", node)
                elif isinstance(target, ast.Attribute) and isinstance(
                    node, (ast.AugAssign,)
                ):
                    # mod.NAME += ... rebinds another module's attribute.
                    chain = _dotted_chain(target)
                    if chain is not None and len(chain) > 1:
                        sites.append(
                            MutationSite(
                                chain=chain[:-1],
                                verb=f"augmented assignment to .{chain[-1]}",
                                line=node.lineno,
                                col=node.col_offset,
                            )
                        )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    record(target.value, "del", node)
    return sites


class _PayloadScanner(ast.NodeVisitor):
    """Finds lambdas/locally-defined callables reaching executor calls.

    Tracks, per enclosing function scope, the names bound to values that
    cannot survive pickling to a worker process: lambdas, nested ``def``s,
    local classes, and instances of local classes.  At each
    ``*.run_tasks(...)`` / ``*.submit(...)`` / ``*.map(...)`` call inside
    a function, arguments that are lambda expressions or such names are
    reported.
    """

    def __init__(self) -> None:
        self.suspects: List[PayloadSuspect] = []
        self._scope: List[Dict[str, str]] = []

    # -- scope bookkeeping -------------------------------------------------
    def _enter(self, node: ast.AST) -> None:
        local: Dict[str, str] = {}
        body = getattr(node, "body", [])
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local[stmt.name] = "locally-defined function"
            elif isinstance(stmt, ast.ClassDef):
                local[stmt.name] = "locally-defined class"
        self._scope.append(local)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter(node)
        self.generic_visit(node)
        self._scope.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._scope:
            kind = None
            if isinstance(node.value, ast.Lambda):
                kind = "lambda"
            elif isinstance(node.value, ast.Call) and isinstance(
                node.value.func, ast.Name
            ):
                bound = self._lookup(node.value.func.id)
                if bound == "locally-defined class":
                    kind = "instance of a locally-defined class"
            if kind is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._scope[-1][target.id] = kind
        self.generic_visit(node)

    def _lookup(self, name: str) -> Optional[str]:
        for local in reversed(self._scope):
            if name in local:
                return local[name]
        return None

    # -- submission sites --------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        site = None
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in EXECUTOR_METHODS:
                site = node.func.attr
        elif isinstance(node.func, ast.Name) and node.func.id == "run_tasks":
            site = "run_tasks"
        if site is not None and self._scope:
            for arg in list(node.args) + [
                kw.value for kw in node.keywords if kw.arg is not None
            ]:
                self._inspect_arg(arg, site)
        self.generic_visit(node)

    def _inspect_arg(self, arg: ast.AST, site: str) -> None:
        if isinstance(arg, ast.Lambda):
            self.suspects.append(
                PayloadSuspect(
                    line=arg.lineno,
                    col=arg.col_offset,
                    detail=f"lambda passed to {site}() cannot be pickled "
                    "to a worker process",
                )
            )
            return
        if isinstance(arg, ast.Name):
            kind = self._lookup(arg.id)
            if kind is not None:
                self.suspects.append(
                    PayloadSuspect(
                        line=arg.lineno,
                        col=arg.col_offset,
                        detail=f"{kind} {arg.id!r} passed to {site}() "
                        "cannot be pickled to a worker process",
                    )
                )


_SHAPE_WORDS = None  # lazily borrowed from rules.ReturnShapeDocRule


def _doc_has_shape(doc: Optional[str]) -> bool:
    global _SHAPE_WORDS
    if doc is None:
        return False
    if _SHAPE_WORDS is None:
        from repro.devtools.reprolint.rules import ReturnShapeDocRule

        _SHAPE_WORDS = ReturnShapeDocRule._SHAPE_WORDS
    return bool(_SHAPE_WORDS.search(doc))


def _collect_functions(tree: ast.Module) -> List[FunctionFacts]:
    """Module/class-level functions with their check_shape call chains."""
    facts: List[FunctionFacts] = []

    def walk_defs(body: Iterable[ast.stmt]):
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield stmt
            elif isinstance(stmt, (ast.ClassDef, ast.If, ast.Try)):
                yield from walk_defs(stmt.body)

    for func in walk_defs(tree.body):
        chains: List[Tuple[str, ...]] = []
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                chain = _dotted_chain(node.func)
                if chain is not None and chain[-1] == "check_shape":
                    chains.append(chain)
        doc = ast.get_docstring(func)
        facts.append(
            FunctionFacts(
                name=func.name,
                line=func.lineno,
                col=func.col_offset,
                public=not func.name.startswith("_"),
                has_doc=doc is not None,
                doc_has_shape=_doc_has_shape(doc),
                check_shape_chains=tuple(chains),
            )
        )
    return facts


def summarize_module(ctx: FileContext, module: Optional[str] = None) -> ModuleSummary:
    """Extract a :class:`ModuleSummary` from one parsed file."""
    tree = ctx.tree
    collector = _ImportCollector(tree.body)
    collector.visit(tree)

    mutable_globals: Dict[str, int] = {}
    for stmt in tree.body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
            value: Optional[ast.AST] = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        if value is not None and _is_mutable_binding(value):
            for target in targets:
                if isinstance(target, ast.Name) and target.id != "__all__":
                    mutable_globals.setdefault(target.id, stmt.lineno)

    scanner = _PayloadScanner()
    scanner.visit(tree)

    backend_seam = False
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is True
            and any(
                isinstance(t, ast.Name) and t.id == "__backend_seam__"
                for t in stmt.targets
            )
        ):
            backend_seam = True
            break

    return ModuleSummary(
        module=module or module_name_for(ctx.path),
        path=str(ctx.path),
        imports=collector.records,
        mutable_globals=mutable_globals,
        mutations=_collect_mutations(tree),
        payload_suspects=scanner.suspects,
        functions=_collect_functions(tree),
        line_disables={k: sorted(v) for k, v in ctx.line_disables.items()},
        file_disables=sorted(ctx.file_disables),
        backend_seam=backend_seam,
    )


class ProjectModel:
    """Pass 2's view: every module summary plus cross-file resolution."""

    def __init__(self, summaries: Sequence[ModuleSummary], layers=None) -> None:
        if layers is None:
            from repro.devtools.reprolint.graph import REPRO_LAYERS

            layers = REPRO_LAYERS
        self.layers = layers
        self.summaries: Dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.summaries[summary.module] = summary
        self.modules: Set[str] = set(self.summaries)

    def __len__(self) -> int:
        return len(self.summaries)

    def ordered(self) -> List[ModuleSummary]:
        """Summaries in deterministic module-name order."""
        return [self.summaries[m] for m in sorted(self.summaries)]

    # -- name resolution ---------------------------------------------------
    def alias_tables(
        self, summary: ModuleSummary
    ) -> Tuple[Dict[str, str], Dict[str, Tuple[str, str]]]:
        """``(module aliases, from-import name bindings)`` for one module.

        Module aliases map a local name to a dotted module; name bindings
        map a local name to ``(module, original name)``.  A from-import
        of a project submodule counts as a module alias.
        """
        mod_aliases: Dict[str, str] = {}
        name_bindings: Dict[str, Tuple[str, str]] = {}
        for rec in summary.imports:
            if rec.name is None:
                if rec.asname:
                    mod_aliases[rec.asname] = rec.module
                else:
                    mod_aliases[rec.module.split(".")[0]] = rec.module.split(
                        "."
                    )[0]
            else:
                sub = f"{rec.module}.{rec.name}"
                if sub in self.modules:
                    mod_aliases[rec.bound_name] = sub
                else:
                    name_bindings[rec.bound_name] = (rec.module, rec.name)
        return mod_aliases, name_bindings

    def resolve_chain(
        self, summary: ModuleSummary, chain: Tuple[str, ...]
    ) -> Optional[Tuple[str, str]]:
        """Resolve a dotted access chain to ``(defining module, name)``.

        Returns None when the chain does not resolve through this
        module's literal imports (locals, builtins, self-references).
        """
        if not chain:
            return None
        mod_aliases, name_bindings = self.alias_tables(summary)
        head = chain[0]
        if head in name_bindings and len(chain) >= 1:
            module, name = name_bindings[head]
            return module, name
        if head in mod_aliases:
            base = mod_aliases[head]
            rest = list(chain[1:])
            # Extend through dotted submodules: `import repro` followed by
            # `repro.recovery.opcache.PROBLEM_CACHE...`.
            while rest and f"{base}.{rest[0]}" in self.modules:
                base = f"{base}.{rest[0]}"
                rest.pop(0)
            if rest:
                return base, rest[0]
        return None

    def import_targets(self, rec: ImportRecord) -> List[str]:
        """Project modules an import record refers to."""
        targets: List[str] = []
        if rec.name is None:
            if rec.module in self.modules:
                targets.append(rec.module)
        else:
            sub = f"{rec.module}.{rec.name}"
            if sub in self.modules:
                targets.append(sub)
            elif rec.module in self.modules:
                targets.append(rec.module)
        return targets
