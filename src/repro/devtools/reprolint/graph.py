"""Import graph and layer config for the whole-program pass.

The repository's architecture is a strict layering: infrastructure at
the bottom, the paper's science in the middle, the runtime and serving
surfaces on top.  RL100 checks every import edge against the declared
:data:`REPRO_LAYERS`; RL101 finds strongly-connected components (import
cycles) in the module-level graph.  The config is data, not convention:
``tests/devtools`` carries a meta-test asserting that every package
under ``src/repro`` is named here, so a new package cannot dodge the
layering check by omission.

The declared order refines the coarse sketch in ``docs/architecture.md``
to what the tree actually enforces (measured, then pinned):

    devtools  ⇣  backend  ⇣  perf  ⇣
    signals/sensing/wavelets/metrics/coding  ⇣  recovery
    ⇣  core/power  ⇣  runtime  ⇣  experiments  ⇣  stream  ⇣  cli

Lower layers must never import higher ones; imports within one layer
are unconstrained.  ``repro.core`` sits *above* ``repro.recovery``
because the receiver half of the paper's link (Eq. 1) is built on the
solver stack, and ``repro.experiments`` sits above ``repro.runtime``
because sweep drivers schedule work through the engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.devtools.reprolint.project import ModuleSummary, ProjectModel

__all__ = [
    "LayerConfig",
    "REPRO_LAYERS",
    "build_import_graph",
    "find_cycles",
    "first_import_line",
]


class LayerConfig:
    """An ordered sequence of named layers, each a set of module prefixes.

    A module belongs to the layer holding its *longest* matching prefix
    (prefixes match on dotted-name boundaries).  Modules matching no
    prefix are outside the config and exempt from RL100 — coverage of
    the real tree is enforced separately by the layer meta-test.
    """

    def __init__(self, layers: Sequence[Tuple[str, Sequence[str]]]) -> None:
        if not layers:
            raise ValueError("layer config cannot be empty")
        self.layers: Tuple[Tuple[str, Tuple[str, ...]], ...] = tuple(
            (str(name), tuple(prefixes)) for name, prefixes in layers
        )
        seen: Set[str] = set()
        for _, prefixes in self.layers:
            for prefix in prefixes:
                if prefix in seen:
                    raise ValueError(f"prefix {prefix!r} appears twice")
                seen.add(prefix)

    @property
    def names(self) -> Tuple[str, ...]:
        """Layer names, bottom to top."""
        return tuple(name for name, _ in self.layers)

    @property
    def prefixes(self) -> Tuple[str, ...]:
        """Every declared module prefix, in declaration order."""
        return tuple(p for _, prefixes in self.layers for p in prefixes)

    def layer_of(self, module: str) -> Optional[int]:
        """The layer index for ``module`` (0 = bottom), or None."""
        best: Optional[Tuple[int, int]] = None  # (prefix length, index)
        for index, (_, prefixes) in enumerate(self.layers):
            for prefix in prefixes:
                if module == prefix or module.startswith(prefix + "."):
                    cand = (len(prefix), index)
                    if best is None or cand[0] > best[0]:
                        best = cand
        return None if best is None else best[1]

    def layer_name(self, index: int) -> str:
        """The name of layer ``index``."""
        return self.layers[index][0]

    def unassigned(self, modules: Sequence[str]) -> List[str]:
        """Modules matching no declared prefix (meta-test helper)."""
        return sorted(m for m in modules if self.layer_of(m) is None)


#: The pinned layering of ``src/repro`` (bottom to top).  Every package
#: and top-level module must appear; the meta-test in
#: ``tests/devtools/test_program_rules.py`` enforces coverage.
REPRO_LAYERS = LayerConfig(
    [
        ("devtools", ["repro.devtools"]),
        ("backend", ["repro.backend"]),
        # The workspace/profiler engine sits directly on the backend
        # seam (it hands out backend arrays) and below everything that
        # runs a hot loop, so any kernel layer may lease from it.
        ("perf", ["repro.perf"]),
        (
            "foundation",
            [
                "repro.signals",
                "repro.sensing",
                "repro.wavelets",
                "repro.metrics",
                "repro.coding",
            ],
        ),
        ("recovery", ["repro.recovery"]),
        ("frontend", ["repro.core", "repro.power"]),
        ("runtime", ["repro.runtime"]),
        ("experiments", ["repro.experiments"]),
        # The sharded cluster runtime and load generator are registered
        # explicitly alongside the base streaming package: they live in
        # the same layer (cluster builds on gateway/wire, loadgen builds
        # on cluster) and may not be imported from below it.
        (
            "stream",
            [
                "repro.stream",
                "repro.stream.cluster",
                "repro.stream.loadgen",
            ],
        ),
        ("surface", ["repro.cli", "repro.__main__", "repro"]),
    ]
)


def build_import_graph(
    project: ProjectModel, toplevel_only: bool = True
) -> Dict[str, Set[str]]:
    """Module-level import edges between project modules.

    Self-edges (a package ``__init__`` importing its own submodules) are
    dropped: they are the standard re-export idiom, not cycles.  With
    ``toplevel_only`` (the RL101 configuration) lazy function-level
    imports do not create edges — deferring an import *is* the
    sanctioned way to break an import-time cycle.
    """
    graph: Dict[str, Set[str]] = {m: set() for m in project.modules}
    for summary in project.ordered():
        for rec in summary.imports:
            if toplevel_only and not rec.toplevel:
                continue
            for target in project.import_targets(rec):
                if target != summary.module:
                    graph[summary.module].add(target)
    return graph


def find_cycles(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Strongly-connected components with more than one module.

    Iterative Tarjan, deterministic: neighbours are visited in sorted
    order and each cycle is rotated to start at its smallest module.
    The result is sorted by that anchor module.
    """
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    cycles: List[List[str]] = []

    for root in sorted(graph):
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_i = work[-1]
            if child_i == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            children = sorted(graph[node])
            if child_i < len(children):
                work[-1] = (node, child_i + 1)
                child = children[child_i]
                if child not in index:
                    work.append((child, 0))
                elif child in on_stack:
                    low[node] = min(low[node], index[child])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    scc: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.append(member)
                        if member == node:
                            break
                    if len(scc) > 1:
                        anchor = min(scc)
                        # Rotate so the cycle starts at its smallest
                        # member; keep the actual edge order by walking
                        # the SCC restricted graph.
                        scc_set = set(scc)
                        ordered = [anchor]
                        while len(ordered) < len(scc):
                            nxt = next(
                                (
                                    m
                                    for m in sorted(graph[ordered[-1]])
                                    if m in scc_set and m not in ordered
                                ),
                                None,
                            )
                            if nxt is None:
                                ordered.extend(
                                    sorted(scc_set - set(ordered))
                                )
                                break
                            ordered.append(nxt)
                        cycles.append(ordered)
    return sorted(cycles)


def first_import_line(
    summary: ModuleSummary, target: str, project: ProjectModel
) -> Tuple[int, int]:
    """Line/col of the first import in ``summary`` hitting ``target``."""
    for rec in sorted(summary.imports, key=lambda r: (r.line, r.col)):
        if target in project.import_targets(rec):
            return rec.line, rec.col
    return 1, 0
