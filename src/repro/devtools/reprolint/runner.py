"""The two-pass lint runner: cache, parallel pass 1, program pass 2.

Pass 1 maps every file to ``(file-scope findings, ModuleSummary)`` — a
pure function of the file's bytes, which makes it both cacheable
(:mod:`repro.devtools.reprolint.cache`) and embarrassingly parallel
(``--jobs`` fans files out over a ``ProcessPoolExecutor``; results are
merged in file order, so the output is deterministic regardless of
scheduling).  Pass 2 assembles the summaries into a
:class:`~repro.devtools.reprolint.project.ProjectModel` and runs the
RL1xx program rules over it in-process.

``--changed`` scoping keeps the *analysis* whole-program — every file
under the given paths is still summarized (warm cache makes that
cheap) so import-layering and shared-state findings stay correct — and
only the *reporting* is restricted to files touched per ``git diff``
plus untracked files.
"""

from __future__ import annotations

import concurrent.futures
import os
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.devtools.reprolint.cache import (
    LintCache,
    analyzer_signature,
    content_key,
)
from repro.devtools.reprolint.core import (
    FileContext,
    Finding,
    decode_failure_finding,
    get_rules,
    iter_python_files,
    read_source,
)
from repro.devtools.reprolint.project import (
    ModuleSummary,
    ProjectModel,
    summarize_module,
)

__all__ = ["LintRun", "run_lint", "changed_files", "DEFAULT_CACHE_DIR"]

#: Default store location; already covered by ``.gitignore`` and the
#: ``make clean-cache`` target.
DEFAULT_CACHE_DIR = Path(".repro_cache")


@dataclass
class LintRun:
    """Everything one lint invocation produced.

    Attributes
    ----------
    findings:
        Sorted by ``(path, line, col, rule)`` — the deterministic order
        every reporter preserves.
    files:
        How many files were examined.
    cache_hits / cache_misses:
        Pass-1 cache accounting (both zero when the cache is off).
    jobs:
        Worker processes used for pass 1.
    """

    findings: List[Finding] = field(default_factory=list)
    files: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    jobs: int = 1

    def summary_line(self) -> str:
        """One status line for the CLI (stderr, not part of the report)."""
        return (
            f"reprolint: {self.files} file(s), "
            f"{len(self.findings)} finding(s), cache "
            f"{self.cache_hits} hit(s) / {self.cache_misses} miss(es), "
            f"jobs {self.jobs}"
        )


def _analyze_file(
    task: Tuple[str, Tuple[str, ...], Tuple[str, ...]],
) -> Tuple[str, List[Finding], Optional[ModuleSummary]]:
    """Pass 1 for one file (module-level so it pickles to workers)."""
    path_str, select, ignore = task
    path = Path(path_str)
    try:
        source = read_source(path)
    except UnicodeDecodeError as exc:
        return path_str, [decode_failure_finding(path, exc)], None
    try:
        ctx = FileContext(path, source)
    except SyntaxError as exc:
        finding = Finding(
            path=path_str,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule_id="RL000",
            message=f"file does not parse: {exc.msg}",
        )
        return path_str, [finding], None
    rules = get_rules(select or None, ignore or None)
    findings = sorted(
        f
        for rule in rules
        if rule.scope == "file"
        for f in rule.check(ctx)
        if not ctx.is_suppressed(f)
    )
    return path_str, findings, summarize_module(ctx)


def changed_files(base: str = "HEAD") -> Set[Path]:
    """Files touched relative to ``base`` plus untracked files (resolved).

    Raises ``ValueError`` when git is unavailable or the working
    directory is not a checkout, so the CLI reports a clean error
    instead of a traceback.
    """

    def git(*args: str) -> List[str]:
        proc = subprocess.run(
            ["git", *args],
            capture_output=True,
            text=True,
            check=False,
        )
        if proc.returncode != 0:
            raise ValueError(
                f"--changed needs a git checkout: git {' '.join(args)} "
                f"failed: {proc.stderr.strip()}"
            )
        return [line for line in proc.stdout.splitlines() if line]

    root = Path(git("rev-parse", "--show-toplevel")[0])
    names = git("diff", "--name-only", base, "--")
    names += git("ls-files", "--others", "--exclude-standard")
    return {(root / name).resolve() for name in names}


def _resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is None or jobs == 1:
        return 1
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError("jobs cannot be negative")
    return int(jobs)


def run_lint(
    paths: Iterable[Path],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    *,
    jobs: Optional[int] = 1,
    use_cache: bool = True,
    cache_dir: Optional[Path] = None,
    changed_base: Optional[str] = None,
    layers=None,
) -> LintRun:
    """Run both passes over every Python file under ``paths``.

    Parameters
    ----------
    select / ignore:
        Rule-id filters, exactly as :func:`get_rules` takes them.
    jobs:
        Pass-1 worker processes (``1`` = in-process, ``0`` = all CPUs).
    use_cache / cache_dir:
        Per-file result cache (default location
        :data:`DEFAULT_CACHE_DIR`); the cache key covers file bytes,
        the analyzer's own sources, and the file-rule selection.
    changed_base:
        When set, restrict *reported* findings to files that differ
        from this git ref (analysis still covers everything).
    layers:
        Layer-config override for RL100 (fixture projects in tests).
    """
    rules = get_rules(select=select, ignore=ignore)
    file_rule_ids = tuple(r.rule_id for r in rules if r.scope == "file")
    program_rules = [r for r in rules if r.scope == "program"]
    select_t = tuple(s.upper() for s in select) if select else ()
    ignore_t = tuple(s.upper() for s in ignore) if ignore else ()

    files = list(iter_python_files(paths))
    changed: Optional[Set[Path]] = (
        changed_files(changed_base) if changed_base is not None else None
    )

    cache: Optional[LintCache] = None
    if use_cache:
        cache = LintCache(
            cache_dir if cache_dir is not None else DEFAULT_CACHE_DIR,
            analyzer_signature(file_rule_ids),
        )

    results: Dict[str, Tuple[List[Finding], Optional[ModuleSummary]]] = {}
    keys: Dict[str, str] = {}
    pending: List[str] = []
    for file in files:
        path_str = str(file)
        if cache is not None:
            try:
                data = file.read_bytes()
            except OSError as exc:
                results[path_str] = (
                    [decode_failure_finding(file, exc)],
                    None,
                )
                continue
            key = content_key(file, data)
            keys[path_str] = key
            hit = cache.get(key)
            if hit is not None:
                results[path_str] = hit
                continue
        pending.append(path_str)

    jobs_n = _resolve_jobs(jobs)
    tasks = [(p, select_t, ignore_t) for p in pending]
    if jobs_n > 1 and len(tasks) > 1:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=jobs_n
        ) as pool:
            analyzed = list(pool.map(_analyze_file, tasks))
    else:
        jobs_n = 1
        analyzed = [_analyze_file(task) for task in tasks]
    for path_str, findings, summary in analyzed:
        results[path_str] = (findings, summary)
        if cache is not None and path_str in keys:
            cache.put(keys[path_str], findings, summary)

    # Pass 2: program rules over the assembled project model.
    summaries = [
        summary for _, summary in results.values() if summary is not None
    ]
    project = ProjectModel(summaries, layers=layers)
    by_path: Dict[str, ModuleSummary] = {s.path: s for s in summaries}
    program_findings: List[Finding] = []
    for rule in program_rules:
        for finding in rule.check_program(project):
            owner = by_path.get(finding.path)
            if owner is not None and owner.is_suppressed(
                finding.rule_id, finding.line
            ):
                continue
            program_findings.append(finding)

    findings = sorted(
        f for fs, _ in results.values() for f in fs
    ) + sorted(program_findings)
    findings.sort()

    if changed is not None:
        keep = {str(p) for p in changed}
        findings = [
            f for f in findings if str(Path(f.path).resolve()) in keep
        ]

    if cache is not None:
        cache.save()

    return LintRun(
        findings=findings,
        files=len(files),
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
        jobs=jobs_n,
    )
