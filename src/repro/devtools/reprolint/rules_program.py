"""The whole-program rule family (RL100–RL105).

Where RL001–RL007 audit one file at a time, these rules audit the
invariants the parallel runtime actually depends on, which span files:

* the layering that keeps solvers importable without the runtime
  (RL100) and the import graph acyclic (RL101);
* the ProcessPool boundary — everything shipped through
  ``Executor.run_tasks`` / ``pool.submit`` must survive pickling
  (RL102) — because a payload that pickles by accident today is a
  ``PicklingError`` (or worse, a silently re-imported stale singleton)
  after the next refactor;
* process-wide singletons like
  :data:`repro.recovery.opcache.PROBLEM_CACHE`: mutated from another
  module, per-worker caches silently diverge between the serial and
  parallel executors, which is exactly the hidden-state hazard the
  bit-identity tests cannot see (RL103);
* drift between runtime shape contracts and docstrings (RL104) — a
  function that *enforces* a shape with ``contracts.check_shape`` but
  does not *document* one invites callers to learn the contract by
  crashing;
* the array-backend seam (RL105) — a module that declares
  ``__backend_seam__ = True`` promises all its array work goes through
  :mod:`repro.backend`, so a direct ``import numpy`` there silently
  pins one code path to the host and breaks the per-backend
  differential accounting.

Each subclass implements ``check_program(project)`` over the
:class:`~repro.devtools.reprolint.project.ProjectModel`; suppression
comments work exactly as for file rules (the summaries carry the
disable tables).
"""

from __future__ import annotations

from typing import Iterator

from repro.devtools.reprolint.core import Finding, Rule, register
from repro.devtools.reprolint.graph import (
    LayerConfig,
    build_import_graph,
    find_cycles,
    first_import_line,
)
from repro.devtools.reprolint.project import ModuleSummary, ProjectModel

__all__ = [
    "ProgramRule",
    "ImportLayeringRule",
    "ImportCycleRule",
    "ExecutorPayloadRule",
    "SharedStateMutationRule",
    "ContractDocRule",
    "BackendSeamImportRule",
]


class ProgramRule(Rule):
    """Base class for rules that need the whole project model."""

    scope = "program"

    def check(self, ctx) -> Iterator[Finding]:
        """Program rules do not run per file."""
        return iter(())

    def check_program(self, project: ProjectModel) -> Iterator[Finding]:
        """Yield findings over the whole project (override)."""
        raise NotImplementedError

    def program_finding(
        self,
        summary: ModuleSummary,
        line: int,
        col: int,
        message: str,
    ) -> Finding:
        """Build a finding anchored in ``summary``'s file."""
        return Finding(
            path=summary.path,
            line=line,
            col=col,
            rule_id=self.rule_id,
            message=message,
        )


@register
class ImportLayeringRule(ProgramRule):
    """RL100: imports must respect the declared layer order."""

    rule_id = "RL100"
    title = "import-layering violation"
    rationale = (
        "The solvers must stay importable without the runtime and the "
        "runtime without the serving surfaces; an upward import couples "
        "worker processes to state they must not share and widens what "
        "a ProcessPool worker re-imports on spawn."
    )

    def check_program(self, project: ProjectModel) -> Iterator[Finding]:
        layers: LayerConfig = project.layers
        for summary in project.ordered():
            from_layer = layers.layer_of(summary.module)
            if from_layer is None:
                continue
            seen = set()
            for rec in sorted(summary.imports, key=lambda r: (r.line, r.col)):
                for target in project.import_targets(rec):
                    to_layer = layers.layer_of(target)
                    if to_layer is None or to_layer <= from_layer:
                        continue
                    key = (rec.line, target)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield self.program_finding(
                        summary,
                        rec.line,
                        rec.col,
                        f"{summary.module} (layer "
                        f"'{layers.layer_name(from_layer)}') imports "
                        f"{target} (layer "
                        f"'{layers.layer_name(to_layer)}'); lower layers "
                        "must not import higher ones",
                    )


@register
class ImportCycleRule(ProgramRule):
    """RL101: the module import graph must be acyclic."""

    rule_id = "RL101"
    title = "import cycle"
    rationale = (
        "Cyclic imports make module initialization order-dependent: "
        "which half-initialized module a worker sees depends on the "
        "entry point, so serial and ProcessPool runs can genuinely "
        "import different state."
    )

    def check_program(self, project: ProjectModel) -> Iterator[Finding]:
        graph = build_import_graph(project, toplevel_only=True)
        for cycle in find_cycles(graph):
            anchor = project.summaries[cycle[0]]
            nxt = cycle[1] if len(cycle) > 1 else cycle[0]
            line, col = first_import_line(anchor, nxt, project)
            path = " -> ".join(cycle + [cycle[0]])
            yield self.program_finding(
                anchor,
                line,
                col,
                f"import cycle: {path}; break it by moving shared state "
                "down a layer or deferring one import into the function "
                "that needs it",
            )


@register
class ExecutorPayloadRule(ProgramRule):
    """RL102: executor payloads must be picklable."""

    rule_id = "RL102"
    title = "non-picklable executor payload"
    rationale = (
        "Tasks and task functions cross the ProcessPool boundary by "
        "pickle; lambdas, closures and locally-defined classes either "
        "fail to pickle outright or smuggle unpicklable state into "
        "workers, breaking the pure-function determinism contract of "
        "Executor.run_tasks."
    )

    def check_program(self, project: ProjectModel) -> Iterator[Finding]:
        for summary in project.ordered():
            for suspect in summary.payload_suspects:
                yield self.program_finding(
                    summary, suspect.line, suspect.col, suspect.detail
                )


@register
class SharedStateMutationRule(ProgramRule):
    """RL103: module-level mutable state has one owning module."""

    rule_id = "RL103"
    title = "cross-module mutation of module-level state"
    rationale = (
        "Process-wide singletons (PROBLEM_CACHE, the link memos) exist "
        "per worker process; mutating one from another module bypasses "
        "the owner's accessor discipline, so serial and parallel runs "
        "silently diverge in what their caches hold."
    )

    def check_program(self, project: ProjectModel) -> Iterator[Finding]:
        for summary in project.ordered():
            for site in summary.mutations:
                resolved = project.resolve_chain(summary, site.chain)
                if resolved is None:
                    continue
                owner_name, global_name = resolved
                if owner_name == summary.module:
                    continue
                owner = project.summaries.get(owner_name)
                if owner is None or global_name not in owner.mutable_globals:
                    continue
                yield self.program_finding(
                    summary,
                    site.line,
                    site.col,
                    f"{site.verb} mutates module-level state "
                    f"{owner_name}.{global_name} from outside its defining "
                    "module; route the change through an accessor in "
                    f"{owner_name}",
                )


@register
class ContractDocRule(ProgramRule):
    """RL104: shape contracts and docstrings must agree."""

    rule_id = "RL104"
    title = "shape contract without documented shape"
    rationale = (
        "A public function that enforces an array shape at runtime via "
        "contracts.check_shape but documents none leaves callers to "
        "discover the contract by ContractError; the docstring is the "
        "half of the contract RL007 audits, so the two must not drift."
    )

    @staticmethod
    def _is_contract_call(
        project: ProjectModel,
        summary: ModuleSummary,
        chain,
    ) -> bool:
        resolved = project.resolve_chain(summary, chain)
        if resolved is None:
            # A bare `check_shape(...)` defined in this very module (the
            # contracts module itself) is not a cross-checkable call.
            return False
        module, name = resolved
        return name == "check_shape" and (
            module.endswith(".contracts") or module == "contracts"
        )

    def check_program(self, project: ProjectModel) -> Iterator[Finding]:
        for summary in project.ordered():
            for func in summary.functions:
                if not func.public:
                    continue
                if not any(
                    self._is_contract_call(project, summary, chain)
                    for chain in func.check_shape_chains
                ):
                    continue
                if func.doc_has_shape:
                    continue
                what = (
                    "has no docstring"
                    if not func.has_doc
                    else "has a docstring that documents no shape"
                )
                yield self.program_finding(
                    summary,
                    func.line,
                    func.col,
                    f"{func.name}() enforces an array shape via "
                    f"contracts.check_shape but {what}; document the "
                    "expected shape so the runtime contract and the API "
                    "docs cannot drift",
                )


@register
class BackendSeamImportRule(ProgramRule):
    """RL105: seam-declared modules must not import array libraries."""

    rule_id = "RL105"
    title = "direct array-library import in a backend-seam module"
    rationale = (
        "A module that declares __backend_seam__ = True promises that "
        "all its array operations flow through repro.backend, where the "
        "backend/precision policy and the exact/fast dispatch live; a "
        "direct numpy/scipy (or cupy/torch) import there creates a "
        "host-pinned side channel the per-backend differential "
        "verification never sees."
    )

    #: Import roots a seam module must obtain via :mod:`repro.backend`.
    ARRAY_LIBRARIES = frozenset({"numpy", "scipy", "cupy", "torch", "jax"})

    @staticmethod
    def _is_backend_module(module: str) -> bool:
        """Whether the module lives in a ``backend`` (sub)package.

        The backend package itself is the one place allowed to touch the
        array libraries directly — that is its whole job.
        """
        return "backend" in module.split(".")

    def check_program(self, project: ProjectModel) -> Iterator[Finding]:
        for summary in project.ordered():
            if not summary.backend_seam:
                continue
            if self._is_backend_module(summary.module):
                continue
            for rec in sorted(summary.imports, key=lambda r: (r.line, r.col)):
                root = rec.module.split(".")[0]
                if root not in self.ARRAY_LIBRARIES:
                    continue
                yield self.program_finding(
                    summary,
                    rec.line,
                    rec.col,
                    f"{summary.module} declares __backend_seam__ but "
                    f"imports {rec.module} directly; route array "
                    "operations through repro.backend so the "
                    "backend/precision policy applies",
                )
