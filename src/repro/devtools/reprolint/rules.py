"""The initial ``reprolint`` rule set (RL001–RL007).

Every rule targets a failure mode that can corrupt this repository's
reproduction of the DATE 2015 hybrid-CS results *without* breaking a
test loudly: unseeded randomness shifts the Fig. 7/8 SNR curves between
runs, silent dtype churn perturbs quantizer boundaries, a swallowed
exception hides a solver that never converged, and an undocumented
return shape invites the silent-broadcast class of NumPy bugs.

Adding a rule: subclass :class:`~repro.devtools.reprolint.core.Rule`,
set ``rule_id``/``title``/``rationale``, implement ``check``, decorate
with :func:`~repro.devtools.reprolint.core.register`, and document it in
``docs/static_analysis.md`` (the doc page lists every registered rule).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Set, Tuple

from repro.devtools.reprolint.core import FileContext, Finding, Rule, register

__all__ = [
    "UnseededRandomRule",
    "FloatEqualityRule",
    "MutableDefaultRule",
    "DunderAllRule",
    "SilentDtypeRule",
    "SwallowedExceptionRule",
    "ReturnShapeDocRule",
]


def _dotted_name(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``; None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


@register
class UnseededRandomRule(Rule):
    """RL001: randomness must flow through an explicit Generator."""

    rule_id = "RL001"
    title = "unseeded randomness"
    rationale = (
        "Legacy np.random.* functions share hidden global state; any call "
        "not routed through np.random.default_rng(seed) makes Phi, noise "
        "draws and hence the SNR/PRD curves depend on import order."
    )

    #: Constructors that take an explicit seed and are therefore fine.
    ALLOWED = frozenset(
        {
            "default_rng",
            "Generator",
            "RandomState",
            "SeedSequence",
            "BitGenerator",
            "PCG64",
            "PCG64DXSM",
            "Philox",
            "SFC64",
            "MT19937",
        }
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for name, node in ctx.legacy_random_imports.items():
            if name not in self.ALLOWED:
                yield self.finding(
                    ctx,
                    node,
                    f"'from numpy.random import {name}' imports a legacy "
                    "global-state function; use np.random.default_rng(seed)",
                )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted_name(node.func)
            if chain is None:
                continue
            func = None
            if (
                len(chain) >= 3
                and chain[0] in ctx.numpy_aliases
                and chain[1] == "random"
            ):
                func = chain[2]
            elif len(chain) == 2 and chain[0] in ctx.nprandom_aliases:
                func = chain[1]
            if func is not None and func not in self.ALLOWED:
                yield self.finding(
                    ctx,
                    node,
                    f"np.random.{func}(...) uses the hidden global RNG; "
                    "route draws through np.random.default_rng(seed)",
                )


def _contains_float_literal(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Constant) and isinstance(sub.value, float)
        for sub in ast.walk(node)
    )


def _is_float_operand(node: ast.AST) -> bool:
    """True for operands that are clearly computed floats (not a 0-guard)."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float) and node.value != 0
    if isinstance(node, ast.UnaryOp):
        return _is_float_operand(node.operand)
    if isinstance(node, ast.BinOp):
        return _contains_float_literal(node)
    return False


@register
class FloatEqualityRule(Rule):
    """RL002: no exact equality against computed float values."""

    rule_id = "RL002"
    title = "float equality"
    rationale = (
        "Exact ==/!= on floating-point results is platform- and "
        "optimization-order-dependent; quantizer boundaries and solver "
        "stopping tests must use tolerances. Comparing against literal "
        "0.0 is allowed as the conventional disabled-feature guard."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_operand(left) or _is_float_operand(right):
                    yield self.finding(
                        ctx,
                        node,
                        "exact ==/!= against a computed float; compare with "
                        "a tolerance (np.isclose / math.isclose) instead",
                    )
                    break


@register
class MutableDefaultRule(Rule):
    """RL003: no mutable default arguments."""

    rule_id = "RL003"
    title = "mutable default argument"
    rationale = (
        "A list/dict/set default is created once and shared across calls; "
        "stateful defaults make per-window results depend on call history, "
        "which is exactly the nondeterminism this codebase must exclude."
    )

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

    def _is_mutable(self, node: Optional[ast.AST]) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in self._MUTABLE_CALLS
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            args = node.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default argument in {name}(); "
                        "use None and create the container in the body",
                    )


@register
class DunderAllRule(Rule):
    """RL004: public modules declare a consistent ``__all__``."""

    rule_id = "RL004"
    title = "missing or inconsistent __all__"
    rationale = (
        "__all__ is the machine-checkable statement of a module's public "
        "surface; without it, star-imports and API-stability checks drift "
        "silently as helpers are added."
    )

    def _top_level_bindings(self, tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            names.add(sub.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name != "*":
                        names.add(alias.asname or alias.name)
            elif isinstance(stmt, (ast.If, ast.Try)):
                # Common guarded-import idiom: count one level down.
                for sub in ast.walk(stmt):
                    if isinstance(sub, (ast.Import, ast.ImportFrom)):
                        for alias in sub.names:
                            if alias.name != "*":
                                names.add(
                                    alias.asname or alias.name.split(".")[0]
                                )
        return names

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        stem = ctx.path.stem
        if stem.startswith("_") and stem != "__init__":
            return
        tree = ctx.tree
        all_node: Optional[ast.Assign] = None
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in stmt.targets
            ):
                all_node = stmt
        bindings = self._top_level_bindings(tree)
        public = {n for n in bindings if not n.startswith("_")}
        if all_node is None:
            if public:
                yield Finding(
                    path=str(ctx.path),
                    line=1,
                    col=0,
                    rule_id=self.rule_id,
                    message="public module defines no __all__",
                )
            return
        value = all_node.value
        if not isinstance(value, (ast.List, ast.Tuple)) or not all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in value.elts
        ):
            yield self.finding(
                ctx,
                all_node,
                "__all__ must be a literal list/tuple of strings so it can "
                "be checked statically",
            )
            return
        for elt in value.elts:
            exported = elt.value  # type: ignore[union-attr]
            if exported not in bindings:
                yield self.finding(
                    ctx,
                    elt,
                    f"__all__ lists {exported!r} which is not defined at "
                    "module top level",
                )


@register
class SilentDtypeRule(Rule):
    """RL005: hot-path ``astype`` must pass an explicit ``copy=``."""

    rule_id = "RL005"
    title = "silent dtype-changing copy in hot path"
    rationale = (
        "astype() copies by default even when the dtype already matches; "
        "in sensing/, recovery/ and coding/ that is a hidden per-window "
        "allocation, and an accidental float64->float32 round-trip moves "
        "quantizer decision boundaries. Passing copy=False makes both the "
        "conversion and the no-op case explicit."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_hot_path:
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and not any(kw.arg == "copy" for kw in node.keywords)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "astype(...) without copy= in a hot path; pass "
                    "copy=False to make the conversion cost explicit",
                )


@register
class SwallowedExceptionRule(Rule):
    """RL006: no bare ``except`` and no silently-passing handlers."""

    rule_id = "RL006"
    title = "bare except / swallowed exception"
    rationale = (
        "A bare except hides KeyboardInterrupt and solver failures alike; "
        "a handler whose body is just `pass` turns a non-converged BPDN "
        "solve into a silently wrong PRD number."
    )

    @staticmethod
    def _is_noop(stmt: ast.stmt) -> bool:
        if isinstance(stmt, ast.Pass):
            return True
        return isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare 'except:' also catches KeyboardInterrupt/SystemExit; "
                    "name the exception types",
                )
            elif all(self._is_noop(stmt) for stmt in node.body):
                yield self.finding(
                    ctx,
                    node,
                    "exception handler silently swallows the error; handle, "
                    "log, or re-raise it",
                )


@register
class ReturnShapeDocRule(Rule):
    """RL007: public array-returning functions document the shape."""

    rule_id = "RL007"
    title = "undocumented return shape"
    rationale = (
        "NumPy broadcasting converts shape mistakes into silently wrong "
        "numbers; the only cheap defense is that every public function "
        "annotated to return an ndarray states the returned shape (or "
        "dimensionality) in its docstring."
    )

    _SHAPE_WORDS = re.compile(
        r"shape|scalar|[12]-d\b|same\s+(shape|length)|\(\s*[mnk]\b|length\s+``?[mnk]",
        re.IGNORECASE,
    )

    def _returns_ndarray(self, ctx: FileContext, node: ast.AST) -> bool:
        returns = getattr(node, "returns", None)
        if returns is None:
            return False
        if isinstance(returns, ast.Constant) and isinstance(returns.value, str):
            return "ndarray" in returns.value
        chain = _dotted_name(returns)
        if chain is None:
            return False
        if chain[-1] != "ndarray":
            return False
        return len(chain) == 1 or chain[0] in ctx.numpy_aliases | {"numpy"}

    def _public_functions(
        self, body: List[ast.stmt]
    ) -> Iterator[ast.FunctionDef]:
        """Functions at module/class level; nested helpers are not API."""
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield stmt  # type: ignore[misc]
            elif isinstance(stmt, (ast.ClassDef, ast.If, ast.Try)):
                yield from self._public_functions(stmt.body)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in self._public_functions(ctx.tree.body):
            if node.name.startswith("_"):
                continue
            if not self._returns_ndarray(ctx, node):
                continue
            doc = ast.get_docstring(node)
            if doc is None:
                yield self.finding(
                    ctx,
                    node,
                    f"{node.name}() returns an ndarray but has no docstring "
                    "documenting the shape",
                )
            elif not self._SHAPE_WORDS.search(doc):
                yield self.finding(
                    ctx,
                    node,
                    f"{node.name}() returns an ndarray but its docstring "
                    "does not document the returned shape",
                )
