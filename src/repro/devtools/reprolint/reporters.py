"""Finding reporters: human text, machine JSON, and SARIF for CI.

All three take the finding list produced by the runner and return a
string.  Every reporter is fully deterministic — findings are re-sorted
by ``(path, line, col, rule)`` and every mapping is emitted with sorted
keys — so CI diffs of committed reports are meaningful and the result
cache can safely replay stored findings in any order.

The JSON document is versioned so CI consumers can detect schema
changes; the SARIF document targets the 2.1.0 schema that GitHub code
scanning and most CI annotators ingest.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import PurePath
from typing import Dict, List, Sequence

from repro.devtools.reprolint.core import Finding, get_rules

__all__ = [
    "render_text",
    "render_json",
    "render_sarif",
    "JSON_SCHEMA_VERSION",
    "SARIF_VERSION",
]

JSON_SCHEMA_VERSION = 1
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _ordered(findings: Sequence[Finding]) -> List[Finding]:
    """Findings in the canonical ``(path, line, col, rule)`` order."""
    return sorted(findings)


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: ID message`` line per finding plus a summary."""
    findings = _ordered(findings)
    if not findings:
        return "reprolint: no findings"
    lines = [f.format() for f in findings]
    files = len({f.path for f in findings})
    by_rule = Counter(f.rule_id for f in findings)
    breakdown = ", ".join(f"{rid}×{n}" for rid, n in sorted(by_rule.items()))
    lines.append(
        f"reprolint: {len(findings)} finding(s) in {files} file(s) [{breakdown}]"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """The findings as a stable, versioned JSON document.

    Deterministic by construction: findings sorted by ``(path, line,
    col, rule)``, ``by_rule`` keys sorted, and the serializer emits
    sorted keys — two runs over the same tree produce byte-identical
    documents (this stability is what the cache keys and CI diffs rely
    on).
    """
    findings = _ordered(findings)
    by_rule: Dict[str, int] = dict(
        sorted(Counter(f.rule_id for f in findings).items())
    )
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "count": len(findings),
        "by_rule": by_rule,
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_rules(rule_ids: Sequence[str]) -> List[dict]:
    """SARIF ``tool.driver.rules`` descriptors for the ids in use."""
    descriptors: Dict[str, dict] = {
        "RL000": {
            "id": "RL000",
            "shortDescription": {"text": "unreadable or unparsable file"},
            "fullDescription": {
                "text": "The file could not be decoded or parsed, so it "
                "cannot be audited at all."
            },
        }
    }
    for rule in get_rules():
        descriptors[rule.rule_id] = {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.title},
            "fullDescription": {"text": rule.rationale},
        }
    return [descriptors[rid] for rid in sorted(set(rule_ids) & set(descriptors))]


def render_sarif(findings: Sequence[Finding]) -> str:
    """The findings as a SARIF 2.1.0 document (CI annotation format).

    Emits one ``run`` with the full registered-rule metadata for every
    rule that fired, and one ``result`` per finding with a physical
    location (URIs are forward-slash relative paths).  Deterministic for
    the same reasons as :func:`render_json`.
    """
    findings = _ordered(findings)
    fired = [f.rule_id for f in findings]
    rules = _sarif_rules(fired)
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    results = []
    for f in findings:
        result = {
            "ruleId": f.rule_id,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": PurePath(f.path).as_posix()
                        },
                        "region": {
                            "startLine": max(f.line, 1),
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        if f.rule_id in rule_index:
            result["ruleIndex"] = rule_index[f.rule_id]
        results.append(result)
    payload = {
        "$schema": _SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
