"""Finding reporters: human-readable text and machine-readable JSON.

Both take the sorted finding list produced by
:func:`repro.devtools.reprolint.core.lint_paths` and return a string;
the CLI picks one via ``--format``.  The JSON document is versioned so
CI consumers can detect schema changes.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence

from repro.devtools.reprolint.core import Finding

__all__ = ["render_text", "render_json", "JSON_SCHEMA_VERSION"]

JSON_SCHEMA_VERSION = 1


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: ID message`` line per finding plus a summary."""
    if not findings:
        return "reprolint: no findings"
    lines = [f.format() for f in findings]
    files = len({f.path for f in findings})
    by_rule = Counter(f.rule_id for f in findings)
    breakdown = ", ".join(f"{rid}×{n}" for rid, n in sorted(by_rule.items()))
    lines.append(
        f"reprolint: {len(findings)} finding(s) in {files} file(s) [{breakdown}]"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """The findings as a stable, versioned JSON document."""
    by_rule: Dict[str, int] = dict(
        sorted(Counter(f.rule_id for f in findings).items())
    )
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "count": len(findings),
        "by_rule": by_rule,
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
