"""Analytical power models (paper §VI): blocks, architectures, comparisons."""

from repro.power.comparison import (
    OperatingPoint,
    PAPER_OPERATING_POINTS,
    measurements_for_target_snr,
    power_gain,
)
from repro.power.energy import EnergyReport, NodeEnergyModel, RadioModel
from repro.power.models import (
    BOLTZMANN_J_PER_K,
    DEFAULT_TEMPERATURE_K,
    ELECTRON_CHARGE_C,
    PowerBreakdown,
    adc_power,
    amplifier_power,
    integrator_power,
    noise_efficiency_factor,
    thermal_voltage,
)
from repro.power.rmpi_power import (
    HybridArchitecture,
    RmpiArchitecture,
    sweep_frequencies,
)

__all__ = [
    "BOLTZMANN_J_PER_K",
    "DEFAULT_TEMPERATURE_K",
    "ELECTRON_CHARGE_C",
    "EnergyReport",
    "HybridArchitecture",
    "NodeEnergyModel",
    "RadioModel",
    "OperatingPoint",
    "PAPER_OPERATING_POINTS",
    "PowerBreakdown",
    "RmpiArchitecture",
    "adc_power",
    "amplifier_power",
    "integrator_power",
    "measurements_for_target_snr",
    "noise_efficiency_factor",
    "power_gain",
    "sweep_frequencies",
    "thermal_voltage",
]
