"""Node-level energy accounting: front-end power + radio bits.

The paper's power analysis (Section VI) covers the acquisition front-end;
on a complete WBSN node the *radio* pays per transmitted bit, which is
what the compression buys.  This module combines the two so examples and
benchmarks can answer the designer's real question — joules per second of
ECG, and days on a battery — for any front-end configuration:

    E_window = P_frontend * T_window  +  E_bit * bits_transmitted

Radio energy defaults to a typical low-power 2.4 GHz transceiver figure
(~5 nJ/bit at the antenna, amortized).  All knobs are explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.packets import WindowPacket
from repro.power.rmpi_power import HybridArchitecture, RmpiArchitecture

__all__ = ["RadioModel", "NodeEnergyModel", "EnergyReport"]

#: Typical published energy-per-bit for low-power WBSN radios (J/bit).
DEFAULT_RADIO_J_PER_BIT = 5e-9


@dataclass(frozen=True)
class RadioModel:
    """Transmit-energy model of the node radio.

    Attributes
    ----------
    j_per_bit:
        Energy per payload bit, amortizing startup/overhead (J/bit).
    idle_w:
        Standby power between transmissions (W); 0 models aggressive
        duty cycling.
    """

    j_per_bit: float = DEFAULT_RADIO_J_PER_BIT
    idle_w: float = 0.0

    def __post_init__(self) -> None:
        if self.j_per_bit <= 0:
            raise ValueError("j_per_bit must be positive")
        if self.idle_w < 0:
            raise ValueError("idle_w cannot be negative")

    def window_energy_j(self, bits: int, window_s: float) -> float:
        """Radio energy for one window period."""
        if bits < 0:
            raise ValueError("bits cannot be negative")
        if window_s <= 0:
            raise ValueError("window duration must be positive")
        return self.j_per_bit * bits + self.idle_w * window_s


@dataclass(frozen=True)
class EnergyReport:
    """Energy split for a stream of windows."""

    frontend_j: float
    radio_j: float
    duration_s: float

    @property
    def total_j(self) -> float:
        """Front-end plus radio energy."""
        return self.frontend_j + self.radio_j

    @property
    def average_power_w(self) -> float:
        """Mean node power over the accounted interval."""
        return self.total_j / self.duration_s

    def battery_days(self, capacity_mah: float, voltage_v: float = 3.0) -> float:
        """Projected lifetime on a battery at this average power."""
        if capacity_mah <= 0 or voltage_v <= 0:
            raise ValueError("battery parameters must be positive")
        energy_j = capacity_mah * 1e-3 * 3600.0 * voltage_v
        return energy_j / self.average_power_w / 86400.0


class NodeEnergyModel:
    """Whole-node energy for a front-end architecture + radio.

    Parameters
    ----------
    architecture:
        :class:`RmpiArchitecture` or :class:`HybridArchitecture` — the
        acquisition front-end whose power model applies.
    fs_hz:
        Nyquist sampling rate of the input.
    radio:
        Transmit-energy model.
    """

    def __init__(
        self,
        architecture,
        fs_hz: float = 360.0,
        radio: Optional[RadioModel] = None,
    ) -> None:
        if not isinstance(architecture, (RmpiArchitecture, HybridArchitecture)):
            raise TypeError(
                "architecture must be an RmpiArchitecture or HybridArchitecture"
            )
        if fs_hz <= 0:
            raise ValueError("fs must be positive")
        self.architecture = architecture
        self.fs_hz = fs_hz
        self.radio = radio or RadioModel()

    def frontend_power_w(self) -> float:
        """Continuous acquisition power at the configured rate."""
        return self.architecture.total_w(self.fs_hz)

    def window_report(self, packet: WindowPacket) -> EnergyReport:
        """Energy for acquiring + transmitting one packet's window."""
        window_s = packet.n / self.fs_hz
        frontend = self.frontend_power_w() * window_s
        radio = self.radio.window_energy_j(packet.total_bits, window_s)
        return EnergyReport(
            frontend_j=frontend, radio_j=radio, duration_s=window_s
        )

    def stream_report(self, packets) -> EnergyReport:
        """Aggregate energy over a sequence of packets."""
        packets = list(packets)
        if not packets:
            raise ValueError("need at least one packet")
        reports = [self.window_report(p) for p in packets]
        return EnergyReport(
            frontend_j=sum(r.frontend_j for r in reports),
            radio_j=sum(r.radio_j for r in reports),
            duration_s=sum(r.duration_s for r in reports),
        )

    def uncompressed_baseline(self, n_samples: int, bits_per_sample: int = 12) -> EnergyReport:
        """Reference: Nyquist ADC node streaming raw samples.

        Front-end power is a single full-resolution ADC (Eq. 4 with
        m = n = 1) — no RMPI bank, no low-res path — so this isolates the
        radio-side saving the compression buys.
        """
        from repro.power.models import adc_power

        if n_samples <= 0 or bits_per_sample <= 0:
            raise ValueError("sample counts must be positive")
        duration = n_samples / self.fs_hz
        frontend = adc_power(1, 1, self.fs_hz, bits_per_sample) * duration
        radio = self.radio.window_energy_j(
            n_samples * bits_per_sample, duration
        )
        return EnergyReport(
            frontend_j=frontend, radio_j=radio, duration_s=duration
        )
