"""Analytical block-level power models (paper Section VI).

The paper evaluates power *analytically*, reusing the 90 nm block models of
Chen, Chandrakasan & Stojanovic (JSSC 2012) for the three dominant blocks
of an RMPI channel bank:

* ADC array (Eq. 4):   ``P_ADC = (m/n) * FOM * 2**B * fs``
* Integrator + S/H (Eq. 5): ``P_Int = 2*BW_f * m * V_DD^2 * 10*pi*n*C_p / 16``
* Amplifiers (Eq. 9):  ``P_amp = 2*BW * 3*m*n * 2**(2*B_y) *
                          (G_A^2 * NEF^2 / V_DD) * pi*(kT)^2 / q``

where ``m`` is the number of parallel channels, ``n`` the samples per
processing window, ``fs`` the Nyquist sampling frequency, ``BW = fs/2`` the
signal bandwidth, ``B`` / ``B_y`` converter resolutions, ``G_A`` the front-end
voltage gain and NEF the amplifier noise-efficiency factor (Eq. 6).

These are *models*, implemented exactly as printed; the reproduction target
is the paper's Fig. 11 breakdown (amplifier dominance, linear frequency
scaling) and the 2.5x / 11x hybrid-vs-normal ratios, which depend only on
the measurement-count ratio — not on absolute watts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "BOLTZMANN_J_PER_K",
    "ELECTRON_CHARGE_C",
    "DEFAULT_TEMPERATURE_K",
    "thermal_voltage",
    "adc_power",
    "integrator_power",
    "amplifier_power",
    "noise_efficiency_factor",
    "PowerBreakdown",
]

BOLTZMANN_J_PER_K = 1.380649e-23
ELECTRON_CHARGE_C = 1.602176634e-19
DEFAULT_TEMPERATURE_K = 300.0


def thermal_voltage(temperature_k: float = DEFAULT_TEMPERATURE_K) -> float:
    """``V_T = kT/q`` in volts (~25.9 mV at 300 K)."""
    if temperature_k <= 0:
        raise ValueError("temperature must be positive")
    return BOLTZMANN_J_PER_K * temperature_k / ELECTRON_CHARGE_C


def _check_common(m: int, n: int, fs_hz: float) -> None:
    if m <= 0 or n <= 0:
        raise ValueError("m and n must be positive")
    if fs_hz <= 0:
        raise ValueError("sampling frequency must be positive")


def adc_power(
    m: int,
    n: int,
    fs_hz: float,
    resolution_bits: int,
    fom_j_per_conv: float = 100e-15,
) -> float:
    """Eq. 4: power of the ``m``-ADC array in watts.

    Each channel converts once per ``n``-sample window, so the aggregate
    conversion rate is ``(m/n) * fs``; FOM defaults to the paper's
    100 fJ/conversion-step.
    """
    _check_common(m, n, fs_hz)
    if resolution_bits <= 0:
        raise ValueError("resolution must be positive")
    if fom_j_per_conv <= 0:
        raise ValueError("FOM must be positive")
    return (m / n) * fom_j_per_conv * (2.0**resolution_bits) * fs_hz


def integrator_power(
    m: int,
    n: int,
    signal_bandwidth_hz: float,
    vdd_v: float = 1.0,
    pole_capacitance_f: float = 1e-12,
) -> float:
    """Eq. 5: integrator + sample/hold power in watts.

    ``P_Int = 2*BW_f * m * V_DD^2 * 10*pi*n*C_p / 16`` with ``C_p`` the
    dominant-pole capacitance of the unloaded OTA.
    """
    if signal_bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    _check_common(m, n, 2.0 * signal_bandwidth_hz)
    if vdd_v <= 0 or pole_capacitance_f <= 0:
        raise ValueError("V_DD and C_p must be positive")
    return (
        2.0
        * signal_bandwidth_hz
        * m
        * vdd_v**2
        * 10.0
        * np.pi
        * n
        * pole_capacitance_f
        / 16.0
    )


def amplifier_power(
    m: int,
    n: int,
    signal_bandwidth_hz: float,
    measurement_bits: int,
    gain_db: float = 40.0,
    nef: float = 2.5,
    vdd_v: float = 1.0,
    temperature_k: float = DEFAULT_TEMPERATURE_K,
) -> float:
    """Eq. 9: total amplifier power of the channel bank in watts.

    The noise floor the amplifiers must reach scales with the measurement
    quantizer resolution (the ``2**(2*B_y)`` term) and the front-end gain,
    which is why the amplifier array dominates the budget and why power is
    directly proportional to the channel count ``m`` — the lever the hybrid
    design pulls.
    """
    if signal_bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    _check_common(m, n, 2.0 * signal_bandwidth_hz)
    if measurement_bits <= 0:
        raise ValueError("measurement resolution must be positive")
    if not 1.0 <= nef <= 10.0:
        raise ValueError("NEF outside the plausible 1-10 range")
    if vdd_v <= 0:
        raise ValueError("V_DD must be positive")
    ga = 10.0 ** (gain_db / 20.0)
    kt = BOLTZMANN_J_PER_K * temperature_k
    return (
        2.0
        * signal_bandwidth_hz
        * 3.0
        * m
        * n
        * 2.0 ** (2 * measurement_bits)
        * (ga**2 * nef**2 / vdd_v)
        * np.pi
        * kt**2
        / ELECTRON_CHARGE_C
    )


def noise_efficiency_factor(
    input_noise_vrms: float,
    amp_current_a: float,
    bandwidth_hz: float,
    temperature_k: float = DEFAULT_TEMPERATURE_K,
) -> float:
    """Eq. 6: NEF of an amplifier from its measured noise and current.

    ``NEF = v_ni,rms * sqrt(2*I_amp / (pi * V_T * 4kT * BW))``; the paper
    quotes 2-3 for state-of-the-art instrumentation amplifiers.
    """
    if min(input_noise_vrms, amp_current_a, bandwidth_hz) <= 0:
        raise ValueError("all quantities must be positive")
    vt = thermal_voltage(temperature_k)
    kt = BOLTZMANN_J_PER_K * temperature_k
    return float(
        input_noise_vrms
        * np.sqrt(2.0 * amp_current_a / (np.pi * vt * 4.0 * kt * bandwidth_hz))
    )


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-block power of one architecture configuration, in watts."""

    adc_w: float
    integrator_w: float
    amplifier_w: float

    @property
    def total_w(self) -> float:
        """Sum of the three blocks."""
        return self.adc_w + self.integrator_w + self.amplifier_w

    def dominant_block(self) -> str:
        """Name of the largest contributor (``"amplifier"`` in all the
        paper's configurations)."""
        blocks = {
            "adc": self.adc_w,
            "integrator": self.integrator_w,
            "amplifier": self.amplifier_w,
        }
        return max(blocks, key=blocks.get)

    def as_microwatts(self) -> dict:
        """The breakdown in microwatts, keyed like the paper's legend."""
        return {
            "P[adc]": self.adc_w * 1e6,
            "P[Int]": self.integrator_w * 1e6,
            "P[amp]": self.amplifier_w * 1e6,
            "P[Total]": self.total_w * 1e6,
        }

    def scaled(self, factor: float) -> "PowerBreakdown":
        """Every block multiplied by ``factor`` (e.g. duty cycling)."""
        if factor < 0:
            raise ValueError("factor cannot be negative")
        return PowerBreakdown(
            self.adc_w * factor,
            self.integrator_w * factor,
            self.amplifier_w * factor,
        )

    def __add__(self, other: "PowerBreakdown") -> "PowerBreakdown":
        return PowerBreakdown(
            self.adc_w + other.adc_w,
            self.integrator_w + other.integrator_w,
            self.amplifier_w + other.amplifier_w,
        )
