"""Hybrid-vs-normal power comparisons (paper Section VI headline numbers).

The paper fixes a target reconstruction quality, finds the measurement
count each design needs to reach it, and compares total power:

* at SNR = 20 dB: hybrid needs m = 96, normal CS m = 240 → ~2.5x gain;
* at SNR = 17 dB: hybrid needs m = 16, normal CS m = 176 → ~11x gain.

:func:`power_gain` evaluates the ratio for any (m_normal, m_hybrid) pair;
:func:`measurements_for_target_snr` performs the measurement-count search
on real recovery sweeps (used by the headline benchmark so the ratio is
*measured*, not asserted); :data:`PAPER_OPERATING_POINTS` records the
paper's own numbers for comparison tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from repro.power.rmpi_power import HybridArchitecture, RmpiArchitecture

__all__ = [
    "OperatingPoint",
    "PAPER_OPERATING_POINTS",
    "power_gain",
    "measurements_for_target_snr",
]


@dataclass(frozen=True)
class OperatingPoint:
    """One fixed-quality comparison point between the two designs."""

    target_snr_db: float
    m_normal: int
    m_hybrid: int
    paper_gain: float

    def gain(
        self,
        fs_hz: float = 360.0,
        n: int = 512,
        lowres_bits: int = 7,
    ) -> float:
        """The power ratio this point yields under the analytical models."""
        return power_gain(
            self.m_normal, self.m_hybrid, fs_hz=fs_hz, n=n, lowres_bits=lowres_bits
        )


#: The two operating points quoted in paper Section VI.
PAPER_OPERATING_POINTS: Tuple[OperatingPoint, ...] = (
    OperatingPoint(target_snr_db=20.0, m_normal=240, m_hybrid=96, paper_gain=2.5),
    OperatingPoint(target_snr_db=17.0, m_normal=176, m_hybrid=16, paper_gain=11.0),
)


def power_gain(
    m_normal: int,
    m_hybrid: int,
    *,
    fs_hz: float = 360.0,
    n: int = 512,
    lowres_bits: int = 7,
    base: Optional[RmpiArchitecture] = None,
) -> float:
    """Total-power ratio ``P_normal / P_hybrid`` at matched quality.

    Parameters
    ----------
    m_normal, m_hybrid:
        Measurement counts each design needs for the target quality.
    fs_hz:
        Nyquist sampling frequency (360 Hz for MIT-BIH-class ECG).
    n:
        Window length.
    lowres_bits:
        Resolution of the hybrid's parallel channel.
    base:
        Optional base RMPI design to copy analog parameters from.
    """
    if m_normal <= 0 or m_hybrid <= 0:
        raise ValueError("measurement counts must be positive")
    template = base if base is not None else RmpiArchitecture(m=m_normal, n=n)
    normal = template.with_channels(m_normal)
    hybrid = HybridArchitecture(
        cs=template.with_channels(m_hybrid), lowres_bits=lowres_bits
    )
    return normal.total_w(fs_hz) / hybrid.total_w(fs_hz)


def measurements_for_target_snr(
    snr_of_m: Callable[[int], float],
    target_snr_db: float,
    m_candidates: Sequence[int],
) -> Optional[int]:
    """Smallest measurement count whose measured SNR meets the target.

    Parameters
    ----------
    snr_of_m:
        Callback returning the (averaged) reconstruction SNR in dB for a
        measurement count — typically a closure over a recovery sweep.
    target_snr_db:
        Quality floor.
    m_candidates:
        Candidate counts, ascending.  Returns ``None`` when even the
        largest fails (as happens for normal CS at aggressive targets,
        matching the paper's "fails to converge" region).
    """
    ordered = sorted(set(int(m) for m in m_candidates))
    if not ordered:
        raise ValueError("need at least one candidate measurement count")
    for m in ordered:
        if snr_of_m(m) >= target_snr_db:
            return m
    return None
