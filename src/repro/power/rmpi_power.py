"""Architecture-level power models: RMPI bank and the hybrid front-end.

Composes the block models of :mod:`repro.power.models` into the two
architectures the paper compares in Fig. 11:

* :class:`RmpiArchitecture` — a classic ``m``-channel RMPI CS front-end;
* :class:`HybridArchitecture` — a (smaller) RMPI bank plus the
  ultra-low-power low-resolution Nyquist channel.  The parallel channel is
  one amplifier + one ADC whose noise requirement is set by the *low*
  resolution, so its contribution is "negligible compared to CS path"
  (paper §II) — a claim :meth:`HybridArchitecture.lowres_fraction`
  quantifies rather than assumes.

Both expose ``breakdown(fs)`` and ``sweep(fs_values)`` so the Fig. 11
curves are one call away.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.power.models import (
    PowerBreakdown,
    adc_power,
    amplifier_power,
    integrator_power,
)

__all__ = ["RmpiArchitecture", "HybridArchitecture", "sweep_frequencies"]


@dataclass(frozen=True)
class RmpiArchitecture:
    """An ``m``-channel RMPI CS front-end (paper Figs. 3 and 10).

    Attributes mirror the paper's Section VI parameters: ``n`` samples per
    window, 12-bit measurement quantization, 40 dB front-end gain, NEF 2.5
    (middle of the quoted 2-3 range), 1 V supply in 90 nm, 100 fJ/step ADC
    FOM and 1 pF OTA pole capacitance.
    """

    m: int
    n: int = 512
    measurement_bits: int = 12
    gain_db: float = 40.0
    nef: float = 2.5
    vdd_v: float = 1.0
    fom_j_per_conv: float = 100e-15
    pole_capacitance_f: float = 1e-12

    def __post_init__(self) -> None:
        if self.m <= 0 or self.n <= 0:
            raise ValueError("m and n must be positive")
        if self.m > self.n:
            raise ValueError("RMPI needs m <= n")

    def breakdown(self, fs_hz: float) -> PowerBreakdown:
        """Block-level power at Nyquist sampling frequency ``fs_hz``."""
        if fs_hz <= 0:
            raise ValueError("fs must be positive")
        bw = fs_hz / 2.0
        return PowerBreakdown(
            adc_w=adc_power(
                self.m, self.n, fs_hz, self.measurement_bits, self.fom_j_per_conv
            ),
            integrator_w=integrator_power(
                self.m, self.n, bw, self.vdd_v, self.pole_capacitance_f
            ),
            amplifier_w=amplifier_power(
                self.m,
                self.n,
                bw,
                self.measurement_bits,
                self.gain_db,
                self.nef,
                self.vdd_v,
            ),
        )

    def total_w(self, fs_hz: float) -> float:
        """Total power at ``fs_hz`` in watts."""
        return self.breakdown(fs_hz).total_w

    def with_channels(self, m: int) -> "RmpiArchitecture":
        """Same design with a different channel count."""
        return replace(self, m=m)


@dataclass(frozen=True)
class HybridArchitecture:
    """The paper's hybrid front-end: small RMPI bank + low-res channel.

    Attributes
    ----------
    cs:
        The CS path (an :class:`RmpiArchitecture` with the reduced ``m``).
    lowres_bits:
        Resolution of the parallel Nyquist-rate channel (7 in the paper).
    lowres_gain_db:
        Gain of the low-res channel's (single) front-end amplifier.  The
        low-res path needs far less gain headroom; 20 dB is a conservative
        choice — even reusing 40 dB leaves the path negligible.
    """

    cs: RmpiArchitecture
    lowres_bits: int = 7
    lowres_gain_db: float = 20.0

    def __post_init__(self) -> None:
        if self.lowres_bits <= 0:
            raise ValueError("lowres_bits must be positive")

    def lowres_breakdown(self, fs_hz: float) -> PowerBreakdown:
        """Power of the parallel low-resolution channel alone.

        One ADC converting at the full Nyquist rate (``m=n=1`` makes Eq. 4
        count every sample) and one amplifier whose noise floor matches the
        low-res quantizer; no integrator (it is a plain sampling channel).
        """
        if fs_hz <= 0:
            raise ValueError("fs must be positive")
        bw = fs_hz / 2.0
        return PowerBreakdown(
            adc_w=adc_power(1, 1, fs_hz, self.lowres_bits, self.cs.fom_j_per_conv),
            integrator_w=0.0,
            amplifier_w=amplifier_power(
                1,
                1,
                bw,
                self.lowres_bits,
                self.lowres_gain_db,
                self.cs.nef,
                self.cs.vdd_v,
            ),
        )

    def breakdown(self, fs_hz: float) -> PowerBreakdown:
        """Combined CS-path + low-res-path block powers."""
        return self.cs.breakdown(fs_hz) + self.lowres_breakdown(fs_hz)

    def total_w(self, fs_hz: float) -> float:
        """Total hybrid power at ``fs_hz`` in watts."""
        return self.breakdown(fs_hz).total_w

    def lowres_fraction(self, fs_hz: float) -> float:
        """Low-res channel share of the total (paper: "negligible")."""
        total = self.total_w(fs_hz)
        return self.lowres_breakdown(fs_hz).total_w / total


def sweep_frequencies(
    architecture,
    fs_values_hz: Sequence[float],
) -> dict:
    """Evaluate an architecture over a frequency sweep (Fig. 11 driver).

    Returns a dict of equally-long lists: ``fs_hz``, ``adc_w``,
    ``integrator_w``, ``amplifier_w``, ``total_w``.
    """
    fs_arr = np.asarray(list(fs_values_hz), dtype=float)
    if fs_arr.size == 0 or np.any(fs_arr <= 0):
        raise ValueError("fs sweep must be non-empty and positive")
    rows = [architecture.breakdown(float(fs)) for fs in fs_arr]
    return {
        "fs_hz": fs_arr.tolist(),
        "adc_w": [r.adc_w for r in rows],
        "integrator_w": [r.integrator_w for r in rows],
        "amplifier_w": [r.amplifier_w for r in rows],
        "total_w": [r.total_w for r in rows],
    }
