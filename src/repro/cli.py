"""Command-line interface to the hybrid CS ECG front-end.

The subcommands cover the everyday workflows:

* ``repro synthesize`` — write synthetic database records as WFDB files;
* ``repro compress``   — run a record through a front-end and report the
  per-window quality/compression table (``--workers N`` fans the window
  solves out over processes);
* ``repro bench``      — a timed CR sweep through the staged execution
  engine, emitting machine-readable ``BENCH_sweep.json`` throughput
  numbers plus a streaming-gateway section (``--workers``, ``--smoke``,
  ``--compare-serial``);
* ``repro stream``     — the multi-patient streaming telemetry gateway:
  N synthetic patients through a lossy link into a ``StreamGateway``,
  with periodic snapshots (see ``docs/streaming.md``);
* ``repro loadtest``   — the deterministic gateway load test: hundreds
  to thousands of interleaved synthetic patients with scripted
  loss/overload phases against the single-process or sharded gateway,
  writing ``BENCH_gateway.json`` (see ``docs/streaming.md``);
* ``repro tradeoff``   — the low-resolution channel design table
  (Figs. 5-6 / Table I in one view);
* ``repro power``      — the Section VI power comparison for a given pair
  of operating points;
* ``repro lint``       — the ``reprolint`` static-analysis pass over the
  source tree (see ``docs/static_analysis.md``).

Installed as ``repro`` via the console-script entry point, also runnable
as ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.recovery.methods import method_names

__all__ = ["build_parser", "main"]


def _add_backend_options(parser: argparse.ArgumentParser) -> None:
    """The shared ``--backend`` / ``--precision`` knobs.

    Selects the array backend + precision carried on
    ``FrontEndConfig.backend`` (see ``docs/backends.md``).  The default
    (numpy/float64) is the exact path; ``repro bench`` benches any
    non-default selection *alongside* the exact arm rather than instead
    of it, so the artifacts always contain the gated reference cells.
    """
    from repro.backend import PRECISIONS, backend_names

    parser.add_argument(
        "--backend", default="numpy", choices=backend_names(),
        help="array backend for the batched engines (default: numpy)",
    )
    parser.add_argument(
        "--precision", default="float64", choices=list(PRECISIONS),
        help="engine dtype policy (default: float64, the exact path)",
    )


def _backend_settings(args: argparse.Namespace):
    """The ``BackendSettings`` an argparse namespace selects (validated)."""
    from repro.backend import (
        BackendSettings,
        BackendUnavailableError,
        get_backend,
    )

    settings = BackendSettings(name=args.backend, precision=args.precision)
    try:
        get_backend(settings.name)  # fail fast if the backend is unavailable
    except BackendUnavailableError as exc:
        # Surface as the CLI's clean `error:` path (it is user input, not
        # a bug), keeping the distinct type for library callers.
        raise ValueError(str(exc)) from exc
    return settings


def _add_workers_option(parser: argparse.ArgumentParser, default: int = 1) -> None:
    """The one shared ``--workers`` knob (resolved by executor_from_workers).

    Every subcommand that fans window solves out over processes adds the
    flag through here, so the semantics stay uniform: ``1`` = serial,
    ``0`` = all CPUs, ``N`` = that many worker processes.
    """
    parser.add_argument(
        "--workers", type=int, default=default,
        help="worker processes for window solves "
             f"(1 = serial, 0 = all CPUs; default {default})",
    )


def _cmd_synthesize(args: argparse.Namespace) -> int:
    from repro.signals.database import (
        MITBIH_RECORD_NAMES,
        load_record,
        load_record_pair,
    )
    from repro.signals.wfdb_io import write_record, write_record_pair

    names = args.records or list(MITBIH_RECORD_NAMES[: args.count])
    out = Path(args.output)
    for name in names:
        if args.two_lead:
            mlii, v5 = load_record_pair(
                name, duration_s=args.duration, clean=args.clean
            )
            hea, dat = write_record_pair(mlii, v5, out)
            print(f"wrote {hea} (2 leads, {len(mlii)} samples each)")
        else:
            record = load_record(
                name, duration_s=args.duration, clean=args.clean
            )
            hea, dat = write_record(record, out)
            print(
                f"wrote {hea} ({len(record)} samples, "
                f"{record.duration_s:.0f} s)"
            )
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    from repro.core.config import FrontEndConfig
    from repro.core.pipeline import run_record
    from repro.recovery.pdhg import PdhgSettings
    from repro.runtime.executors import executor_from_workers
    from repro.signals.database import load_record
    from repro.signals.wfdb_io import read_record

    if args.wfdb:
        record = read_record(Path(args.wfdb))
    else:
        record = load_record(args.record, duration_s=args.duration)

    config = FrontEndConfig(
        window_len=args.window,
        n_measurements=args.measurements,
        lowres_bits=args.lowres_bits,
        solver=PdhgSettings(max_iter=args.max_iter),
        backend=_backend_settings(args),
    )
    outcome = run_record(
        record,
        config,
        method=args.method,
        max_windows=args.max_windows,
        executor=executor_from_workers(args.workers),
    )
    print(
        f"record {record.name} | method {args.method} | "
        f"m={config.n_measurements} (CS CR {config.cs_cr_percent:.1f}%)"
    )
    print(f"{'win':>4} {'PRD %':>8} {'SNR dB':>8} {'net CR %':>9} {'iters':>6}")
    for w in outcome.windows:
        print(
            f"{w.window_index:>4} {w.prd_percent:>8.2f} {w.snr_db:>8.2f} "
            f"{w.budget.net_cr_percent:>9.2f} {w.solver_iterations:>6}"
        )
    print(
        f"mean: PRD {outcome.mean_prd:.2f}% | SNR {outcome.mean_snr_db:.2f} dB | "
        f"net CR {outcome.net_cr_percent:.2f}% | "
        f"low-res overhead {outcome.lowres_overhead_percent:.2f}%"
    )
    return 0


def _cmd_tradeoff(args: argparse.Namespace) -> int:
    from repro.experiments.fig5_fig6_table1 import run_lowres_tradeoff
    from repro.experiments.runner import ExperimentScale

    scale = ExperimentScale(
        record_names=tuple(args.records or ("100", "101", "103")),
        duration_s=args.duration,
        max_windows=None,
    )
    data = run_lowres_tradeoff(
        resolutions=range(args.min_bits, args.max_bits + 1), scale=scale
    )
    print(f"{'bits':>4} {'entries':>8} {'flash B':>8} "
          f"{'bits/smp':>9} {'overhead %':>11}")
    for row in data.rows:
        print(
            f"{row.resolution_bits:>4} {row.codebook_entries:>8} "
            f"{row.storage_bytes:>8} {row.bits_per_sample:>9.2f} "
            f"{row.overhead_percent:>11.2f}"
        )
    return 0


def _cmd_power(args: argparse.Namespace) -> int:
    from repro.power.comparison import power_gain
    from repro.power.rmpi_power import HybridArchitecture, RmpiArchitecture

    normal = RmpiArchitecture(m=args.m_normal, n=args.window)
    hybrid = HybridArchitecture(
        cs=RmpiArchitecture(m=args.m_hybrid, n=args.window),
        lowres_bits=args.lowres_bits,
    )
    print(f"fs = {args.fs:g} Hz, n = {args.window}")
    for name, arch in (("normal RMPI", normal), ("hybrid CS", hybrid)):
        b = arch.breakdown(args.fs)
        uw = b.as_microwatts()
        print(
            f"  {name:<12} m={arch.m if hasattr(arch, 'm') else arch.cs.m:>4}  "
            f"adc {uw['P[adc]']:.3g} uW | int {uw['P[Int]']:.3g} uW | "
            f"amp {uw['P[amp]']:.3g} uW | total {uw['P[Total]']:.3g} uW"
        )
    gain = power_gain(
        args.m_normal,
        args.m_hybrid,
        fs_hz=args.fs,
        n=args.window,
        lowres_bits=args.lowres_bits,
    )
    print(f"  power gain (normal/hybrid): {gain:.2f}x")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    import os
    import time

    from repro.core.codebooks import CodebookKey, build_codebook
    from repro.core.config import FrontEndConfig
    from repro.experiments.runner import (
        PAPER_CR_VALUES,
        ExperimentScale,
        sweep_compression_ratios,
    )
    from repro.experiments.solver_bench import (
        run_solver_bench,
        solver_bench_payload,
    )
    from repro.recovery.pdhg import PdhgSettings
    from repro.runtime.executors import (
        executor_from_workers,
        resolve_worker_count,
    )
    from repro.runtime.stages import recovery_cache_stats
    from repro.stream.driver import StreamScenario, run_stream_scenario

    if args.cache_size is not None:
        from repro.recovery.opcache import PROBLEM_CACHE

        PROBLEM_CACHE.resize(args.cache_size)

    records = tuple(args.records) if args.records else (
        ("100", "101") if args.smoke else ("100", "101", "103", "107")
    )
    crs = tuple(args.crs) if args.crs else (
        (75.0, 88.0) if args.smoke else PAPER_CR_VALUES
    )
    max_windows = (
        args.max_windows
        if args.max_windows is not None
        else (3 if args.smoke else 2)
    )
    compare_serial = args.compare_serial or args.smoke
    workers = resolve_worker_count(args.workers)
    methods = ("hybrid", "normal")

    # Microbench backend arms: always the exact reference, plus the
    # selected backend/precision when it differs.
    from repro.backend import BackendSettings

    bench_backends = [BackendSettings()]
    selected = _backend_settings(args)
    if selected != bench_backends[0]:
        bench_backends.append(selected)

    config = FrontEndConfig(
        window_len=args.window,
        lowres_bits=args.lowres_bits,
        solver=PdhgSettings(max_iter=args.max_iter),
    )

    if args.encode_only:
        _write_encode_bench(args, config, crs, records[0], bench_backends)
        return 0

    if args.bsbl_only:
        _write_bsbl_bench(args, workers)
        return 0

    scale = ExperimentScale(
        record_names=records, duration_s=args.duration, max_windows=max_windows
    )
    windows_total = len(records) * len(crs) * len(methods) * max_windows

    # Train the shared offline codebook outside the timed region: it is
    # identical state for both executors (fork-based workers inherit it).
    build_codebook(
        CodebookKey(
            lowres_bits=config.lowres_bits,
            acquisition_bits=config.acquisition_bits,
        )
    )

    def timed_sweep(executor):
        start = time.perf_counter()
        points = sweep_compression_ratios(
            config,
            cr_values=crs,
            methods=methods,
            scale=scale,
            cache=False,
            executor=executor,
        )
        elapsed = time.perf_counter() - start
        return points, elapsed

    serial_stats = None
    serial_points = None
    if compare_serial:
        serial_points, serial_s = timed_sweep(executor_from_workers(1))
        serial_stats = {
            "wall_clock_s": serial_s,
            "windows_per_sec": windows_total / serial_s,
        }
        print(
            f"serial:   {serial_s:.2f} s "
            f"({serial_stats['windows_per_sec']:.1f} windows/s)"
        )

    points, parallel_s = timed_sweep(executor_from_workers(workers))
    parallel_stats = {
        "wall_clock_s": parallel_s,
        "windows_per_sec": windows_total / parallel_s,
    }
    print(
        f"workers={workers}: {parallel_s:.2f} s "
        f"({parallel_stats['windows_per_sec']:.1f} windows/s)"
    )

    speedup = None
    results_equal = None
    if serial_stats is not None:
        speedup = (
            parallel_stats["windows_per_sec"] / serial_stats["windows_per_sec"]
        )
        results_equal = all(
            pa.cr_percent == pb.cr_percent
            and pa.method == pb.method
            and pa.outcomes == pb.outcomes
            for pa, pb in zip(serial_points, points)
        )
        print(
            f"speedup:  {speedup:.2f}x windows/s over serial "
            f"(results identical: {results_equal})"
        )

    # Streaming-gateway throughput: a short multi-patient run through a
    # 10% erasure link, reported next to the batch numbers.
    stream_patients = 2 if args.smoke else 4
    stream_duration = 6.0 if args.smoke else 15.0
    stream_snapshot = run_stream_scenario(
        StreamScenario(
            patients=stream_patients,
            duration_s=stream_duration,
            config=config,
            erasure_rate=0.1,
        ),
        executor=executor_from_workers(workers),
    )
    stream_stats = {
        "sessions": stream_snapshot.sessions,
        "duration_s": stream_duration,
        "erasure_rate": 0.1,
        "frames_total": stream_snapshot.windows_completed,
        "frames_per_sec": stream_snapshot.reconstructed_per_sec,
        "latency_p50_s": stream_snapshot.latency_p50_s,
        "latency_p95_s": stream_snapshot.latency_p95_s,
        "concealed": stream_snapshot.concealed,
        "cs_fallbacks": stream_snapshot.cs_fallbacks,
        "queue_drops": stream_snapshot.queue_drops,
    }
    rate = stream_stats["frames_per_sec"]
    rate_txt = f"{rate:.1f} frames/s" if rate is not None else "n/a"
    print(
        f"stream:   {stream_stats['sessions']} sessions, "
        f"{stream_stats['frames_total']} frames ({rate_txt})"
    )

    payload = {
        "schema": "repro-bench-sweep/v1",
        "smoke": bool(args.smoke),
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "records": list(records),
        "cr_values": [float(c) for c in crs],
        "methods": list(methods),
        "window_len": config.window_len,
        "max_windows": max_windows,
        "duration_s": args.duration,
        "windows_total": windows_total,
        "parallel": parallel_stats,
        "serial": serial_stats,
        "speedup_windows_per_sec": speedup,
        "results_equal_serial": results_equal,
        "stream": stream_stats,
        "points": [
            {
                "cr_percent": p.cr_percent,
                "method": p.method,
                "mean_snr_db": p.mean_snr_db,
                "mean_prd_percent": p.mean_prd_percent,
                "net_cr_percent": p.net_cr_percent,
            }
            for p in points
        ],
    }
    out = Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    # Solver microbenchmark: the batched+cached recovery engine against
    # the legacy per-window loop, on the same CR grid.
    cells = run_solver_bench(
        config,
        crs,
        record_name=records[0],
        n_windows=4 if args.smoke else 12,
        duration_s=args.duration,
        backends=bench_backends,
    )
    for c in cells:
        print(
            f"solver {c.solver:<6} CR {c.cr_percent:5.1f}% "
            f"[{c.backend_label}]: "
            f"loop {c.loop_windows_per_sec:6.1f} w/s | "
            f"batched {c.batched_windows_per_sec:6.1f} w/s | "
            f"speedup {c.speedup:5.2f}x | "
            f"max PRD dev {c.max_prd_dev_percent:.2e}%"
        )
    solver_payload = solver_bench_payload(
        cells, smoke=bool(args.smoke), cache_stats=recovery_cache_stats()
    )
    solvers_out = Path(args.solvers_output)
    solvers_out.parent.mkdir(parents=True, exist_ok=True)
    solvers_out.write_text(json.dumps(solver_payload, indent=2) + "\n")
    print(f"wrote {solvers_out}")

    # Encoder microbenchmark: the batched encode engine + vectorized
    # synthesis kernels against their scalar reference loops.
    _write_encode_bench(args, config, crs, records[0], bench_backends)

    # Bayesian-family comparison: BSBL / de-quantization vs the hybrid
    # baseline on the smoke CR grid, plus batched-vs-scalar agreement.
    _write_bsbl_bench(args, workers)
    return 0


def _write_bsbl_bench(args, workers) -> None:
    """Run the Bayesian-family comparison and write BENCH_bsbl.json.

    Always runs the fixed smoke grid (2 records x 3 windows at window
    length 256) — the artifact is a quality *comparison* whose gate the
    CI asserts, not a throughput benchmark, so it stays cheap even in
    full bench runs.  ``--crs`` still overrides the CR grid.
    """
    import json

    from repro.core.config import FrontEndConfig
    from repro.experiments.bayes_bench import (
        BAYES_SMOKE_CR_VALUES,
        bayes_bench_payload,
        run_bayes_bench,
        run_bsbl_agreement,
    )
    from repro.recovery.pdhg import PdhgSettings
    from repro.runtime.executors import executor_from_workers
    from repro.runtime.stages import recovery_cache_stats

    crs = tuple(args.crs) if args.crs else BAYES_SMOKE_CR_VALUES
    config = FrontEndConfig(
        window_len=256, solver=PdhgSettings(max_iter=1500, tol=2e-4)
    )
    cells = run_bayes_bench(
        config, crs, executor=executor_from_workers(workers)
    )
    for c in cells:
        print(
            f"bayes {c.method:<12} CR {c.cr_percent:5.1f}%: "
            f"SNR {c.mean_snr_db:6.2f} dB | PRD {c.mean_prd_percent:6.2f}%"
        )
    agreement = run_bsbl_agreement(config, crs)
    for c in agreement:
        print(
            f"agree {c.solver:<12} CR {c.cr_percent:5.1f}%: "
            f"max |dalpha| {c.max_abs_alpha_dev:.2e} "
            f"(speedup {c.speedup:.2f}x)"
        )
    payload = bayes_bench_payload(
        cells, agreement, smoke=True, cache_stats=recovery_cache_stats()
    )
    out = Path(args.bsbl_output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")


def _write_encode_bench(args, config, crs, record_name, backends=None) -> None:
    """Run the encoder/synthesis microbenchmark and write BENCH_encode.json."""
    import json

    from repro.backend import BackendSettings
    from repro.experiments.encode_bench import (
        encode_bench_payload,
        run_encode_bench,
        run_synth_bench,
    )

    encode_cells = run_encode_bench(
        config,
        crs,
        record_name=record_name,
        n_windows=16 if args.smoke else 32,
        duration_s=args.duration,
        backends=backends or (BackendSettings(),),
    )
    for c in encode_cells:
        print(
            f"encode {c.method:<6} CR {c.cr_percent:5.1f}% "
            f"[{c.backend_label}]: "
            f"loop {c.loop_windows_per_sec:7.1f} w/s | "
            f"batched {c.batched_windows_per_sec:7.1f} w/s | "
            f"speedup {c.speedup:5.2f}x | "
            f"bytes identical: {c.bytes_identical}"
        )
    synth_cells = run_synth_bench(
        duration_s=4.0 if args.smoke else 8.0,
        database_duration_s=3.0 if args.smoke else 6.0,
    )
    for c in synth_cells:
        print(
            f"synth  {c.kind:<8}: "
            f"loop {c.loop_samples_per_sec:8.0f} sps | "
            f"vectorized {c.vectorized_samples_per_sec:10.0f} sps | "
            f"speedup {c.speedup:6.1f}x | identical: {c.identical}"
        )
    payload = encode_bench_payload(
        encode_cells, synth_cells, smoke=bool(args.smoke)
    )
    encode_out = Path(args.encode_output)
    encode_out.parent.mkdir(parents=True, exist_ok=True)
    encode_out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {encode_out}")


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from repro.core.config import FrontEndConfig
    from repro.experiments.profile_bench import (
        profile_bench_payload,
        run_profile_bench,
    )
    from repro.perf import pool_stats
    from repro.recovery.opcache import PROBLEM_CACHE
    from repro.runtime.stages import recovery_cache_stats

    if args.cache_size is not None:
        PROBLEM_CACHE.resize(args.cache_size)

    n_windows = args.windows if args.windows is not None else (
        4 if args.smoke else 8
    )
    repeats = args.repeats if args.repeats is not None else (
        2 if args.smoke else 3
    )
    config = FrontEndConfig(window_len=args.window)
    cells, profiler_rows = run_profile_bench(
        config,
        cr_percent=args.cr,
        record_name=args.record,
        n_windows=n_windows,
        duration_s=args.duration,
        repeats=repeats,
        solver_max_iter=60 if args.smoke else 120,
        bsbl_max_iter=6 if args.smoke else 10,
        synth_duration_s=2.0 if args.smoke else 4.0,
    )
    for c in cells:
        print(
            f"kernel {c.kernel:<7}: "
            f"baseline {c.baseline_units_per_sec:9.1f} {c.units}/s | "
            f"workspace {c.workspace_units_per_sec:9.1f} {c.units}/s | "
            f"speedup {c.speedup:5.2f}x | "
            f"alloc {c.baseline_alloc_bytes:>10} B -> "
            f"{c.workspace_alloc_bytes:>4} B "
            f"({c.alloc_reduction:9.0f}x) | "
            f"max dev {c.max_abs_dev:.1e}"
        )
    payload = profile_bench_payload(
        cells,
        profiler_rows,
        smoke=bool(args.smoke),
        cache_stats=recovery_cache_stats(),
        workspace_stats=pool_stats(),
    )
    out = Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.core.config import FrontEndConfig
    from repro.recovery.pdhg import PdhgSettings
    from repro.runtime.executors import executor_from_workers
    from repro.stream.driver import StreamScenario, run_stream_scenario

    config = FrontEndConfig(
        window_len=args.window,
        n_measurements=args.measurements,
        lowres_bits=args.lowres_bits,
        solver=PdhgSettings(max_iter=args.max_iter),
        backend=_backend_settings(args),
    )
    scenario = StreamScenario(
        patients=args.patients,
        duration_s=args.duration,
        config=config,
        method=args.method,
        chunk_size=args.chunk,
        erasure_rate=args.erasure_rate,
        bit_error_rate=args.bit_error_rate,
        seed=args.seed,
        queue_capacity=args.queue_capacity,
        shed_policy=args.policy,
        reorder_depth=args.reorder_depth,
        poll_every=args.poll_every,
    )
    print(
        f"streaming {scenario.patients} patients x {scenario.duration_s:g} s "
        f"(erasure {scenario.erasure_rate:.0%}, BER {scenario.bit_error_rate:g}, "
        f"chunk {scenario.chunk_size})"
    )
    final = run_stream_scenario(
        scenario,
        executor=executor_from_workers(args.workers),
        on_snapshot=lambda snap: print(snap.summary_line()),
    )
    print(final.summary_line())
    per_patient_prd = ", ".join(
        f"{s.patient_id}: "
        + (
            f"{s.rolling_prd_percent:.2f}%"
            if s.rolling_prd_percent is not None
            else "-"
        )
        for s in final.per_session
    )
    print(f"rolling PRD by patient: {per_patient_prd}")
    if args.output:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(final.to_json() + "\n")
        print(f"wrote {out}")
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import json

    from repro.core.config import FrontEndConfig
    from repro.recovery.pdhg import PdhgSettings
    from repro.stream.loadgen import (
        PHASE_SCRIPTS,
        LoadScenario,
        run_loadtest,
    )

    config = FrontEndConfig(
        window_len=args.window,
        n_measurements=args.measurements,
        lowres_bits=args.lowres_bits,
        solver=PdhgSettings(max_iter=args.max_iter),
        backend=_backend_settings(args),
    )
    scenario = LoadScenario(
        patients=args.patients,
        duration_s=args.duration,
        config=config,
        method=args.method,
        chunk_size=args.chunk,
        seed=args.seed,
        queue_capacity=args.queue_capacity,
        shed_policy=args.policy,
        reorder_depth=args.reorder_depth,
        phases=PHASE_SCRIPTS[args.phases],
    )
    mode = (
        f"{args.shards} shards ({args.transport})"
        if args.shards > 1
        else "single-process"
    )
    print(
        f"loadtest: {scenario.patients} patients x {scenario.duration_s:g} s "
        f"[{args.phases}] against {mode}, policy {scenario.shed_policy}"
    )
    payload = run_loadtest(
        scenario,
        shards=args.shards,
        transport=args.transport,
        workers=args.workers,
        on_progress=print if args.verbose else None,
    )

    if args.compare_single and args.shards > 1:
        # The acceptance cross-check: the sharded runtime must recover
        # byte-identical output, and (given the cores) not run slower.
        baseline = run_loadtest(scenario, shards=1, workers=args.workers)
        payload["baseline_single"] = {
            "wall_s": baseline["wall_s"],
            "frames_per_sec": baseline["frames_per_sec"],
            "recovered_digest": baseline["recovered_digest"],
        }
        payload["identical_to_single"] = (
            payload["recovered_digest"] == baseline["recovered_digest"]
        )
        print(
            f"identity vs single-process: {payload['identical_to_single']} "
            f"(sharded {payload['frames_per_sec']:.1f} fr/s, "
            f"single {baseline['frames_per_sec']:.1f} fr/s)"
        )

    rate = payload["frames_per_sec"]
    rate_txt = f"{rate:.1f} frames/s" if rate is not None else "n/a"
    p99 = payload["latency_p99_s"]
    p99_txt = f"{1e3 * p99:.0f}ms" if p99 is not None else "-"
    print(
        f"completed {payload['windows_completed']} windows ({rate_txt}) | "
        f"p99 {p99_txt} | lost {payload['frames_lost']} "
        f"(drops {payload['queue_drops']} rejects {payload['queue_rejects']} "
        f"shed {payload['shed_frames']}) | "
        f"concealed {payload['concealed']}"
    )
    if payload["per_shard"]:
        balance = ", ".join(
            f"{name}: {stats['sessions']}s/{stats['windows_completed']}w"
            for name, stats in payload["per_shard"].items()
        )
        print(f"per-shard balance: {balance}")
    out = Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools.reprolint import (
        get_rules,
        render_json,
        render_sarif,
        render_text,
        run_lint,
    )

    if args.list_rules:
        for rule in get_rules():
            print(f"{rule.rule_id}  {rule.title}")
        return 0
    try:
        run = run_lint(
            [Path(p) for p in (args.paths or ["src"])],
            select=args.select or None,
            ignore=args.ignore or None,
            jobs=args.jobs,
            use_cache=not args.no_cache,
            cache_dir=Path(args.cache_dir) if args.cache_dir else None,
            changed_base=args.changed,
        )
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    render = {
        "json": render_json,
        "sarif": render_sarif,
        "text": render_text,
    }[args.format]
    report = render(run.findings)
    if args.output:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(report + "\n")
        print(f"wrote {out}")
    else:
        print(report)
    print(run.summary_line(), file=sys.stderr)
    if run.findings:
        return 1 if args.strict else 0
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import build_report, write_report

    results_dir = Path(args.results)
    if args.output:
        out = write_report(results_dir, Path(args.output))
    else:
        out = write_report(results_dir)
    _, present, expected = build_report(results_dir)
    print(f"wrote {out} ({present}/{expected} artifacts present)")
    return 0 if present == expected or not args.strict else 1


def build_parser() -> argparse.ArgumentParser:
    """The full CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hybrid compressed-sensing ECG front-end (DATE 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("synthesize", help="write synthetic records as WFDB files")
    p.add_argument("--output", "-o", default="./records", help="output directory")
    p.add_argument("--records", nargs="*", help="record names (default: first N)")
    p.add_argument("--count", type=int, default=4, help="how many records")
    p.add_argument("--duration", type=float, default=60.0, help="seconds per record")
    p.add_argument("--clean", action="store_true", help="disable the noise model")
    p.add_argument("--two-lead", action="store_true",
                   help="write 2-signal records (MLII + V5), like real MIT-BIH")
    p.set_defaults(func=_cmd_synthesize)

    p = sub.add_parser("compress", help="compress + reconstruct one record")
    p.add_argument("--record", default="100", help="synthetic record name")
    p.add_argument("--wfdb", help="path to a WFDB .hea file (overrides --record)")
    p.add_argument("--method", choices=method_names(), default="hybrid")
    p.add_argument("--window", type=int, default=512)
    p.add_argument("--measurements", "-m", type=int, default=96)
    p.add_argument("--lowres-bits", type=int, default=7)
    p.add_argument("--duration", type=float, default=30.0)
    p.add_argument("--max-windows", type=int, default=4)
    p.add_argument("--max-iter", type=int, default=3000)
    _add_workers_option(p, default=1)
    _add_backend_options(p)
    p.set_defaults(func=_cmd_compress)

    p = sub.add_parser(
        "bench",
        help="timed CR sweep through the execution engine; writes "
             "BENCH_sweep.json + BENCH_solvers.json + BENCH_encode.json",
    )
    p.add_argument("--records", nargs="*", help="record names to sweep")
    p.add_argument("--crs", nargs="*", type=float, metavar="CR",
                   help="CS-channel CR values in percent")
    _add_workers_option(p, default=0)
    p.add_argument("--window", type=int, default=512)
    p.add_argument("--lowres-bits", type=int, default=7)
    p.add_argument("--duration", type=float, default=30.0)
    p.add_argument("--max-windows", type=int, default=None)
    p.add_argument("--max-iter", type=int, default=3000)
    p.add_argument("--compare-serial", action="store_true",
                   help="also time the serial executor and record the speedup")
    p.add_argument("--smoke", action="store_true",
                   help="small fixed 2-record sweep with serial comparison "
                        "(the `make bench-smoke` configuration)")
    p.add_argument("--output", "-o", default="benchmarks/results/BENCH_sweep.json",
                   help="where to write the machine-readable result")
    p.add_argument("--solvers-output",
                   default="benchmarks/results/BENCH_solvers.json",
                   help="where to write the solver microbenchmark result")
    p.add_argument("--encode-output",
                   default="benchmarks/results/BENCH_encode.json",
                   help="where to write the encoder microbenchmark result")
    p.add_argument("--encode-only", action="store_true",
                   help="run only the encoder/synthesis microbenchmark "
                        "(the `make bench-encode-smoke` configuration)")
    p.add_argument("--bsbl-output",
                   default="benchmarks/results/BENCH_bsbl.json",
                   help="where to write the Bayesian-family comparison")
    p.add_argument("--bsbl-only", action="store_true",
                   help="run only the Bayesian-family comparison "
                        "(the `make bench-bsbl-smoke` configuration)")
    p.add_argument("--cache-size", type=int, default=None,
                   help="resize the process problem/operator LRU cache "
                        "before benchmarking (entries beyond the new size "
                        "are evicted oldest-first)")
    _add_backend_options(p)
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "profile",
        help="workspace/allocation profile of the hot kernels; writes "
             "BENCH_profile.json",
    )
    p.add_argument("--record", default="100", help="synthetic record name")
    p.add_argument("--cr", type=float, default=50.0,
                   help="CS-channel CR in percent for the solver kernels")
    p.add_argument("--window", type=int, default=256)
    p.add_argument("--windows", type=int, default=None,
                   help="windows per solve stack (default 8, smoke 4)")
    p.add_argument("--repeats", type=int, default=None,
                   help="timed runs per arm (default 3, smoke 2)")
    p.add_argument("--duration", type=float, default=30.0)
    p.add_argument("--smoke", action="store_true",
                   help="small fixed configuration "
                        "(the `make profile-smoke` configuration)")
    p.add_argument("--cache-size", type=int, default=None,
                   help="resize the process problem/operator LRU cache "
                        "before profiling")
    p.add_argument("--output", "-o",
                   default="benchmarks/results/BENCH_profile.json",
                   help="where to write the machine-readable result")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "stream",
        help="online multi-patient streaming demo over a lossy link",
    )
    p.add_argument("--patients", type=int, default=4,
                   help="concurrent synthetic patient streams")
    p.add_argument("--duration", type=float, default=10.0,
                   help="seconds of signal per patient")
    p.add_argument("--method", choices=method_names(), default="hybrid")
    p.add_argument("--window", type=int, default=512)
    p.add_argument("--measurements", "-m", type=int, default=96)
    p.add_argument("--lowres-bits", type=int, default=7)
    p.add_argument("--max-iter", type=int, default=3000)
    p.add_argument("--chunk", type=int, default=181,
                   help="samples per playback chunk (window-misaligned by "
                        "default to exercise the incremental framer)")
    p.add_argument("--erasure-rate", type=float, default=0.1,
                   help="per-frame packet erasure probability")
    p.add_argument("--bit-error-rate", type=float, default=0.0,
                   help="per-bit flip probability on surviving frames")
    p.add_argument("--seed", type=int, default=0, help="base channel seed")
    p.add_argument("--queue-capacity", type=int, default=64,
                   help="per-session ingress queue bound")
    p.add_argument("--policy", default="drop-oldest",
                   choices=("drop-oldest", "drop-newest", "shed-patient"),
                   help="ingress queue overflow policy (default: drop-oldest)")
    p.add_argument("--reorder-depth", type=int, default=4,
                   help="windows a frame may run ahead before a gap is "
                        "declared lost and concealed")
    p.add_argument("--poll-every", type=int, default=8,
                   help="gateway poll cadence, in playback chunks")
    _add_workers_option(p, default=1)
    _add_backend_options(p)
    p.add_argument("--output", "-o",
                   help="also write the final gateway snapshot as JSON")
    p.set_defaults(func=_cmd_stream)

    p = sub.add_parser(
        "loadtest",
        help="deterministic gateway load test; writes BENCH_gateway.json",
    )
    p.add_argument("--patients", type=int, default=200,
                   help="interleaved synthetic patient streams (records "
                        "repeat beyond 48, each under its own identity)")
    p.add_argument("--duration", type=float, default=1.5,
                   help="seconds of signal per patient")
    p.add_argument("--method", choices=method_names(), default="hybrid")
    p.add_argument("--window", type=int, default=512)
    p.add_argument("--measurements", "-m", type=int, default=96)
    p.add_argument("--lowres-bits", type=int, default=7)
    p.add_argument("--max-iter", type=int, default=3000)
    p.add_argument("--chunk", type=int, default=181,
                   help="samples per playback chunk")
    p.add_argument("--seed", type=int, default=0, help="base channel seed")
    p.add_argument("--queue-capacity", type=int, default=64,
                   help="per-session ingress queue bound")
    p.add_argument("--policy", default="drop-oldest",
                   choices=("drop-oldest", "drop-newest", "shed-patient"),
                   help="ingress queue overflow policy (default: drop-oldest)")
    p.add_argument("--reorder-depth", type=int, default=4)
    p.add_argument("--phases", default="nominal",
                   choices=("nominal", "stress"),
                   help="scripted load timeline: steady nominal traffic, or "
                        "nominal -> loss -> poll-starved overload")
    p.add_argument("--shards", type=int, default=1,
                   help="gateway shards (1 = single-process StreamGateway)")
    p.add_argument("--transport", default="inproc",
                   choices=("inproc", "wire"),
                   help="sharded ingress transport (wire = length-prefixed "
                        "byte framing; ignored for --shards 1)")
    p.add_argument("--compare-single", action="store_true",
                   help="with --shards > 1, also run single-process and "
                        "record throughput + bit-identity of the output")
    p.add_argument("--verbose", action="store_true",
                   help="print a snapshot line after every gateway poll")
    _add_workers_option(p, default=1)
    _add_backend_options(p)
    p.add_argument("--output", "-o",
                   default="benchmarks/results/BENCH_gateway.json",
                   help="where to write the machine-readable result")
    p.set_defaults(func=_cmd_loadtest)

    p = sub.add_parser("tradeoff", help="low-res channel design table")
    p.add_argument("--records", nargs="*", help="training/eval records")
    p.add_argument("--duration", type=float, default=30.0)
    p.add_argument("--min-bits", type=int, default=3)
    p.add_argument("--max-bits", type=int, default=10)
    p.set_defaults(func=_cmd_tradeoff)

    p = sub.add_parser("report", help="aggregate benchmark artifacts into REPORT.md")
    p.add_argument("--results", default="benchmarks/results",
                   help="directory holding the benchmark artifacts")
    p.add_argument("--output", "-o", help="report path (default: <results>/REPORT.md)")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero unless every expected artifact exists")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("lint", help="run the reprolint static-analysis pass")
    p.add_argument("paths", nargs="*", help="files/directories (default: src)")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text", help="reporter (default: text)")
    p.add_argument("--output", "-o",
                   help="write the report to a file instead of stdout")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero when any finding remains")
    p.add_argument("--select", nargs="*", metavar="RULE",
                   help="only run these rule ids (e.g. RL001 RL100)")
    p.add_argument("--ignore", nargs="*", metavar="RULE",
                   help="skip these rule ids")
    p.add_argument("--jobs", "-j", type=int, default=1,
                   help="worker processes for the per-file pass "
                        "(1 = in-process, 0 = all CPUs)")
    p.add_argument("--changed", nargs="?", const="HEAD", default=None,
                   metavar="REF",
                   help="report findings only in files changed vs REF "
                        "(default HEAD) plus untracked files; the "
                        "whole-program analysis still sees every file")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the content-hash result cache")
    p.add_argument("--cache-dir", default=None,
                   help="cache directory (default .repro_cache)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the registered rules and exit")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("power", help="Section VI power comparison")
    p.add_argument("--m-normal", type=int, default=240)
    p.add_argument("--m-hybrid", type=int, default=96)
    p.add_argument("--window", type=int, default=512)
    p.add_argument("--lowres-bits", type=int, default=7)
    p.add_argument("--fs", type=float, default=360.0)
    p.set_defaults(func=_cmd_power)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, KeyError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
