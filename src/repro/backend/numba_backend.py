"""Optional Numba CPU JIT backend behind lazy import detection.

Numba compiles scalar Python loops to native code, which is exactly the
shape of the two kernels NumPy handles worst on this workload: the
sequential ``first_order_iir`` recurrence (lfilter's Python/C boundary
dominates at ECG window lengths) and the fused soft-threshold shrinkage
(NumPy evaluates it as four temporaries; the JIT emits one pass).
Everything else inherits from :class:`NumpyBackend` unchanged — ``xp``
is still the ``numpy`` module, so the engines and the host boundary
behave identically.

Like CuPy/torch this is a gated optional dependency: the module never
imports ``numba`` at import time, :meth:`NumbaBackend.available` probes
lazily and never raises, and constructing the backend without numba
installed raises :class:`BackendUnavailableError`.  The differential
suite in ``tests/backend/test_numba_backend.py`` skips cleanly when
numba is absent.

Numerics: the JIT recurrence is the same double-precision arithmetic in
the same order as the SciPy filter, but fused multiply-adds the
compiler may emit can differ in the last ulp — so like every non-
reference backend this is a fast path bounded by differential
tolerances, never bit-for-bit guaranteed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

import numpy as np

from repro.backend.base import BackendUnavailableError
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.registry import register_backend

__all__ = ["NumbaBackend"]


def _import_numba() -> Any:
    try:
        import numba
    except Exception:  # pragma: no cover - exercised only without numba
        return None
    return numba


#: Compiled kernels, built on first use so import stays free.
_JIT: Dict[str, Callable[..., Any]] = {}


def _kernels(numba: Any) -> Dict[str, Callable[..., Any]]:  # pragma: no cover
    # Compiled only where numba is installed; the differential suite is
    # the executable spec for both kernels.
    if _JIT:
        return _JIT

    @numba.njit(cache=True)
    def iir(gain, decay, u, out):
        acc = 0.0
        for k in range(u.shape[0]):
            acc = gain * u[k] + decay * acc
            out[k] = acc
        return out

    @numba.njit(cache=True)
    def shrink(v, threshold, out):
        for k in range(v.shape[0]):
            mag = abs(v[k]) - threshold
            if mag > 0.0:
                out[k] = mag if v[k] > 0.0 else -mag
            else:
                # Keep numpy's signed-zero convention: sign(v) * 0.0.
                out[k] = v[k] * 0.0
        return out

    _JIT["iir"] = iir
    _JIT["shrink"] = shrink
    return _JIT


@register_backend
class NumbaBackend(NumpyBackend):
    """CPU JIT backend: NumPy namespace + compiled recurrence kernels."""

    name = "numba"

    @classmethod
    def available(cls) -> bool:
        return _import_numba() is not None

    def __init__(self) -> None:
        numba = _import_numba()
        if numba is None:
            raise BackendUnavailableError(
                "numba backend needs the numba package installed"
            )
        self._numba = numba  # pragma: no cover - needs numba

    def first_order_iir(
        self, gain: float, decay: float, u: Any
    ) -> np.ndarray:  # pragma: no cover - needs numba
        """Compiled ``y[k] = gain*u[k] + decay*y[k-1]``; float64 ``(n,)``."""
        u = np.asarray(u, dtype=np.float64)
        out = np.empty_like(u)
        return _kernels(self._numba)["iir"](float(gain), float(decay), u, out)

    def soft_threshold(
        self, v: Any, threshold: Any, out: Any = None
    ) -> np.ndarray:  # pragma: no cover - needs numba
        """Fused shrinkage, same shape as ``v`` (1-D float64 JIT path)."""
        v = np.asarray(v)
        if v.dtype != np.float64 or v.ndim != 1:
            # The fused kernel covers the 1-D float64 hot shape; defer
            # everything else to the reference formulation.
            return super().soft_threshold(v, threshold, out=out)
        if out is None:
            out = np.empty_like(v)
        return _kernels(self._numba)["shrink"](v, float(threshold), out)
