"""Optional CuPy (CUDA GPU) backend behind lazy import + device detection.

CuPy reimplements the NumPy namespace, so ``xp`` is the ``cupy`` module
itself and the batched engines run unchanged — the stack solvers'
GEMM-per-iteration shape is exactly what a GPU wants.  The module never
imports ``cupy`` at import time: :meth:`CupyBackend.available` probes
lazily (library importable *and* at least one CUDA device answers), so
this file is importable — and the backend politely unavailable — on the
CPU-only machines this repo usually runs on.

Numerics caveat (why this is a *fast* path, never the exact one): GPU
GEMM accumulation order differs from the host BLAS, so results agree
with the NumPy backend to rounding, not bit-for-bit.  The differential
bench cells quantify the deviation per precision.
"""

from __future__ import annotations

from typing import Any

from repro.backend.base import ArrayBackend, BackendUnavailableError
from repro.backend.registry import register_backend

__all__ = ["CupyBackend"]


def _import_cupy() -> Any:
    try:
        import cupy
    except Exception:  # pragma: no cover - exercised only without cupy
        return None
    return cupy


@register_backend
class CupyBackend(ArrayBackend):
    """CUDA backend over the ``cupy`` namespace (optional dependency)."""

    name = "cupy"

    @classmethod
    def available(cls) -> bool:
        cupy = _import_cupy()
        if cupy is None:
            return False
        try:  # pragma: no cover - needs CUDA hardware
            return int(cupy.cuda.runtime.getDeviceCount()) > 0
        except Exception:  # pragma: no cover
            return False

    def __init__(self) -> None:
        if not self.available():
            raise BackendUnavailableError(
                "cupy backend needs the cupy package and a CUDA device"
            )
        self._cupy = _import_cupy()  # pragma: no cover - needs CUDA

    # Everything below runs only on CUDA machines; kept small and
    # obviously NumPy-shaped so the differential suites are the spec.
    @property
    def xp(self) -> Any:  # pragma: no cover - needs CUDA
        return self._cupy

    def asarray(self, values: Any, dtype: Any = None) -> Any:  # pragma: no cover
        return self._cupy.asarray(values, dtype=dtype)

    def to_numpy(self, arr: Any) -> Any:  # pragma: no cover
        return self._cupy.asnumpy(arr)

    def cho_factor(self, a: Any) -> Any:  # pragma: no cover
        # SciPy-free formulation: keep the lower factor from
        # cupy.linalg.cholesky and tag it for cho_solve.
        return (self._cupy.linalg.cholesky(a), True)

    def cho_solve(
        self, factor: Any, b: Any, overwrite_b: bool = False
    ) -> Any:  # pragma: no cover
        # overwrite_b accepted for protocol parity; the triangular
        # solves below always write fresh outputs.
        from cupyx.scipy.linalg import solve_triangular

        lower_factor, _ = factor
        y = solve_triangular(lower_factor, b, lower=True)
        return solve_triangular(lower_factor.T, y, lower=False)

    def first_order_iir(self, gain: float, decay: float, u: Any) -> Any:  # pragma: no cover
        from cupyx.scipy import signal as cxs

        u = self._cupy.asarray(u)
        b = self._cupy.asarray([gain], dtype=u.dtype)
        a = self._cupy.asarray([1.0, -decay], dtype=u.dtype)
        return cxs.lfilter(b, a, u)

    def packbits(self, bits: Any) -> Any:  # pragma: no cover
        return self._cupy.packbits(bits)

    def bincount(self, values: Any, minlength: int = 0) -> Any:  # pragma: no cover
        return self._cupy.bincount(values, minlength=minlength)
