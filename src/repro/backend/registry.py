"""Backend registry: name → class, instance memo, settings resolution.

Registration happens at import of each backend module (the
``@register_backend`` decorator), which :mod:`repro.backend`'s package
``__init__`` triggers for the three built-ins; third parties can call
:func:`register_backend` on their own subclass before building configs.
Instances are memoized per process — a backend object is stateless
apart from its library handles, and sharing one keeps capability
detection (device queries) a once-per-process cost.

:func:`resolve` is the one call sites use: settings in, a
:class:`ResolvedBackend` bundle (backend, namespace, dtype, settings)
out, with ``None`` meaning the exact NumPy/float64 default.
"""

from __future__ import annotations

from typing import Any, Dict, NamedTuple, Optional, Tuple, Type

from repro.backend.base import ArrayBackend, BackendUnavailableError
from repro.backend.settings import BackendSettings

__all__ = [
    "ResolvedBackend",
    "register_backend",
    "backend_names",
    "available_backends",
    "get_backend",
    "resolve",
]

_REGISTRY: Dict[str, Type[ArrayBackend]] = {}
_INSTANCES: Dict[str, ArrayBackend] = {}


class ResolvedBackend(NamedTuple):
    """Everything an engine needs from one settings resolution."""

    backend: ArrayBackend
    xp: Any
    dtype: Any
    settings: BackendSettings


def register_backend(cls: Type[ArrayBackend]) -> Type[ArrayBackend]:
    """Class decorator adding a backend class under ``cls.name``.

    Re-registering a name replaces the class and drops any memoized
    instance (test fixtures swap stub backends in and out this way).
    """
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a non-empty name")
    _REGISTRY[cls.name] = cls
    _INSTANCES.pop(cls.name, None)
    return cls


def backend_names() -> Tuple[str, ...]:
    """Every registered backend name, sorted (available or not)."""
    return tuple(sorted(_REGISTRY))


def available_backends() -> Tuple[str, ...]:
    """Registered backends whose capability detection passes, sorted."""
    return tuple(n for n in backend_names() if _REGISTRY[n].available())


def get_backend(name: str = "numpy") -> ArrayBackend:
    """The (memoized) backend instance for a registered name.

    Raises ``ValueError`` for an unregistered name and
    :class:`~repro.backend.base.BackendUnavailableError` when the
    library/device behind a registered name is absent — callers can tell
    a typo from a missing optional dependency.
    """
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ValueError(
            f"unknown backend {name!r}; registered: {', '.join(backend_names())}"
        )
    inst = _INSTANCES.get(name)
    if inst is None:
        if not cls.available():
            raise BackendUnavailableError(
                f"backend {name!r} is registered but not available here "
                "(library not installed or no capable device)"
            )
        inst = cls()
        _INSTANCES[name] = inst
    return inst


def resolve(settings: Optional[BackendSettings] = None) -> ResolvedBackend:
    """Resolve settings (``None`` = exact default) to a usable backend.

    Returns the ``(backend, xp, dtype, settings)`` bundle the engines
    destructure at their entry points.
    """
    if settings is None:
        settings = BackendSettings()
    backend = get_backend(settings.name)
    return ResolvedBackend(
        backend=backend,
        xp=backend.xp,
        dtype=backend.dtype(settings.precision),
        settings=settings,
    )
