"""Backend selection carried on :class:`repro.core.config.FrontEndConfig`.

:class:`BackendSettings` is the one object that travels: a frozen,
hashable pair of *which* array backend executes the batched engines and
*what* floating-point precision they run at.  It is deliberately free of
any import of the backends themselves, so configs (and the cache keys
derived from them) stay cheap to build and safe to pickle into worker
processes even when an optional backend library is absent.

The dtype policy in one sentence: ``float64`` on the NumPy backend is
the **exact** path — bit-identical to the scalar oracles and to every
output the repo shipped before the seam existed — while anything else
(``float32``, or a non-NumPy backend) is a **fast** path whose deviation
from the exact path is measured, bounded and reported rather than
assumed away (see ``docs/backends.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BackendSettings", "PRECISIONS"]

#: Supported precision names, mapped to dtypes by each backend's
#: :meth:`~repro.backend.base.ArrayBackend.dtype`.
PRECISIONS = ("float64", "float32")


@dataclass(frozen=True)
class BackendSettings:
    """Which backend and precision the batched engines execute on.

    Hashable so it can live inside ``FrontEndConfig`` and participate in
    operator-cache keys (:mod:`repro.recovery.opcache` keys cached
    factorizations by ``(problem, backend, precision)``).

    Attributes
    ----------
    name:
        Registered backend name (``"numpy"`` is always available;
        ``"cupy"``/``"torch"`` require their libraries and are resolved
        lazily — constructing settings for an absent backend is fine,
        *using* them raises
        :class:`~repro.backend.base.BackendUnavailableError`).
    precision:
        ``"float64"`` (exact default) or ``"float32"`` (fast path).
    """

    name: str = "numpy"
    precision: str = "float64"

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ValueError(f"backend name {self.name!r} is not a valid identifier")
        if self.precision not in PRECISIONS:
            raise ValueError(
                f"precision must be one of {PRECISIONS}, got {self.precision!r}"
            )

    @property
    def is_exact(self) -> bool:
        """Whether this is the bit-identical reference path.

        Only NumPy/float64 carries the bit-identity contract; every
        other combination is a measured fast path.
        """
        return self.name == "numpy" and self.precision == "float64"

    @property
    def label(self) -> str:
        """Stable ``name/precision`` label used in bench cells and reports."""
        return f"{self.name}/{self.precision}"
