"""Pluggable array-backend (``xp``) seam for the batched engines.

Every hot kernel in this repo — the stack solvers
(:mod:`repro.recovery.batched`), the one-GEMM encoder
(:mod:`repro.core.encode_batch`) and the ECGSYN synthesis kernels
(:mod:`repro.signals.ecgsyn`) — consumes this package instead of
importing ``numpy`` directly (reprolint RL105 enforces it).  The seam
has three parts:

* :class:`~repro.backend.base.ArrayBackend` — the protocol: an array
  namespace ``xp`` plus the non-standard shims (Cholesky factor/solve,
  the first-order IIR, ``packbits``/``bincount``);
* :class:`~repro.backend.settings.BackendSettings` — the frozen
  ``(name, precision)`` pair carried on ``FrontEndConfig`` and threaded
  through stages, sessions and the CLI (``--backend``/``--precision``);
* the registry (:func:`get_backend` / :func:`resolve`) with the NumPy
  reference always available and CuPy/numba/torch behind lazy import +
  capability detection.

Dtype policy: NumPy at ``float64`` is the **exact** path — ``xp`` is
the ``numpy`` module itself, so results are bit-identical to the
pre-seam code and every PR 4–5 identity gate holds unchanged.  Anything
else is a **fast** path verified differentially against the exact one.

:data:`HOST` is the process-wide reference backend instance; the
``ndarray``/``Generator``/``default_rng`` re-exports let seam modules
keep annotations and host-side RNG (randomness stays on the host by
policy, so every backend consumes identical random draws).
"""

from repro.backend.base import ArrayBackend, BackendUnavailableError
from repro.backend.registry import (
    ResolvedBackend,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
    resolve,
)
from repro.backend.settings import PRECISIONS, BackendSettings
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.cupy_backend import CupyBackend
from repro.backend.numba_backend import NumbaBackend
from repro.backend.torch_backend import TorchBackend

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "BackendSettings",
    "PRECISIONS",
    "ResolvedBackend",
    "NumpyBackend",
    "CupyBackend",
    "NumbaBackend",
    "TorchBackend",
    "register_backend",
    "backend_names",
    "available_backends",
    "get_backend",
    "resolve",
    "HOST",
    "ndarray",
    "Generator",
    "default_rng",
]

#: The process-wide NumPy reference backend (always available); seam
#: modules use it for host-side work that is exact by definition.
HOST = get_backend("numpy")

#: Host-side array/RNG types re-exported so seam modules need no direct
#: numpy import for annotations or (host-by-policy) randomness.
ndarray = HOST.xp.ndarray
Generator = HOST.xp.random.Generator
default_rng = HOST.xp.random.default_rng
