"""The NumPy reference backend — the exact path and the host boundary.

``xp`` here is literally the ``numpy`` module and the shims delegate to
SciPy, so an engine running on this backend at float64 executes the
*same functions in the same order* as the pre-seam code: the exact path
is bit-identical by construction, not by tolerance.  Every other
backend's correctness is measured against this one (the differential
suites in ``tests/backend``).

This module is the designated home of the repo's direct ``numpy``/
``scipy`` imports for the seam-covered engines — reprolint's RL105
keeps it that way (seam modules may import :mod:`repro.backend`, never
the array libraries themselves).
"""

from __future__ import annotations

from typing import Any

import numpy as np
from scipy import linalg as sla
from scipy import signal as sps

from repro.backend.base import ArrayBackend
from repro.backend.registry import register_backend

__all__ = ["NumpyBackend"]

try:  # The batched-solve gufunc accepts out= (np.linalg.solve does not).
    from numpy.linalg import _umath_linalg as _umath

    _GUFUNC_SOLVE = _umath.solve
except (ImportError, AttributeError):  # pragma: no cover - numpy internals
    _GUFUNC_SOLVE = None


@register_backend
class NumpyBackend(ArrayBackend):
    """CPU reference backend over ``numpy`` + ``scipy`` (always available)."""

    name = "numpy"

    @property
    def xp(self) -> Any:
        return np

    def asarray(self, values: Any, dtype: Any = None) -> np.ndarray:
        """``values`` as a host array, same shape as the input."""
        return np.asarray(values, dtype=dtype)

    def to_numpy(self, arr: Any) -> np.ndarray:
        """``arr`` as a host ndarray, same shape as the input (no copy)."""
        return np.asarray(arr)

    def cho_factor(self, a: Any) -> Any:
        return sla.cho_factor(a)

    def cho_solve(
        self, factor: Any, b: Any, overwrite_b: bool = False
    ) -> np.ndarray:
        """Solution of the factored system, same shape as ``b``.

        ``overwrite_b`` is forwarded to SciPy; it only avoids a copy for
        F-contiguous right-hand sides (C-contiguous stacks are copied to
        Fortran order by LAPACK regardless), and the solution values are
        identical either way.
        """
        return sla.cho_solve(factor, b, overwrite_b=overwrite_b)

    def solve(self, a: Any, b: Any, out: Any = None) -> np.ndarray:
        """Batched ``a x = b``, same shape as ``b``; ``out=`` hits the gufunc.

        The gufunc performs the identical LAPACK ``gesv`` call as
        ``np.linalg.solve`` (bit-identical results, inputs untouched)
        but writes into ``out`` without an intermediate.  One semantic
        difference: on a singular system the gufunc fills ``out`` with
        NaN instead of raising ``LinAlgError``.  The engines only solve
        SPD systems here, so the perf path never hits that branch; the
        ``out=None`` path keeps the raising behaviour.
        """
        if out is None or _GUFUNC_SOLVE is None:
            return super().solve(a, b, out=out)
        return _GUFUNC_SOLVE(a, b, out=out)

    def first_order_iir(self, gain: float, decay: float, u: Any) -> np.ndarray:
        """Filtered signal, same shape as the drive ``u``."""
        u = np.asarray(u)
        # Coefficient dtype follows the drive signal so a float32 fast
        # path stays float32 end to end (lfilter upcasts through
        # result_type(b, a, x) otherwise).
        b = np.asarray([gain], dtype=u.dtype)
        a = np.asarray([1.0, -decay], dtype=u.dtype)
        return sps.lfilter(b, a, u)

    def packbits(self, bits: Any) -> np.ndarray:
        """Bits packed MSB-first into a 1-D uint8 array."""
        return np.packbits(bits)

    def bincount(self, values: Any, minlength: int = 0) -> np.ndarray:
        """Occurrence counts, 1-D of length ``max(values)+1`` or ``minlength``."""
        return np.bincount(values, minlength=minlength)
