"""The array-namespace protocol every compute backend implements.

The batched engines (:mod:`repro.recovery.batched`,
:mod:`repro.core.encode_batch`, the ECGSYN kernels) are written against
an abstract namespace ``xp`` plus a handful of operations that plain
array namespaces do not standardize: Cholesky factor/solve in SciPy's
``(c, lower)`` form, the first-order IIR recurrence behind the ECG
exponential integrator, and the ``packbits``/``bincount`` pair the
coding layer leans on.  :class:`ArrayBackend` bundles the namespace and
those shims behind one object, so adding a GPU or JIT backend is a
subclass plus a registry entry — no engine code changes.

Contract highlights:

* ``xp`` must be NumPy-call-compatible for the operations the engines
  use (``asarray``/``zeros``/``stack``/``sign``/``maximum``/``abs``/
  ``sqrt``/``any``/``arange``/``eye``/``linalg.norm``/...).  For the
  reference backend it *is* the ``numpy`` module, which is what makes
  the exact path bit-identical to the pre-seam code.
* ``available()`` must be safe to call when the backing library is not
  installed (lazy import + capability detection); constructing an
  unavailable backend raises :class:`BackendUnavailableError`.
* ``to_numpy`` is the device→host boundary: results crossing back into
  the scalar/NumPy world (``RecoveryResult``, quantizers, metrics) go
  through it exactly once.
"""

from __future__ import annotations

import abc
from typing import Any, ClassVar

from repro.backend.settings import PRECISIONS

__all__ = ["ArrayBackend", "BackendUnavailableError"]


class BackendUnavailableError(RuntimeError):
    """Raised when a requested backend's library or device is absent."""


class ArrayBackend(abc.ABC):
    """One compute backend: an ``xp`` namespace plus the non-standard shims.

    Subclasses set :attr:`name` (the registry key) and implement the
    abstract surface; everything else — dtype policy included — has a
    protocol-level default.
    """

    #: Registry key; also the value of ``BackendSettings.name``.
    name: ClassVar[str] = ""

    @classmethod
    def available(cls) -> bool:
        """Whether this backend can run here (library + device present).

        Must never raise and must not import the backing library at
        module-import time — capability detection is lazy by contract.
        """
        return True

    @property
    @abc.abstractmethod
    def xp(self) -> Any:
        """The array namespace (the ``numpy`` module for the reference)."""

    def dtype(self, precision: str) -> Any:
        """The namespace dtype for a precision name (the dtype policy).

        ``"float64"`` is the exact default; ``"float32"`` the fast path.
        """
        if precision not in PRECISIONS:
            raise ValueError(
                f"precision must be one of {PRECISIONS}, got {precision!r}"
            )
        return getattr(self.xp, precision)

    # -- array movement ----------------------------------------------------
    @abc.abstractmethod
    def asarray(self, values: Any, dtype: Any = None) -> Any:
        """``values`` as a backend-resident array (no copy when possible)."""

    @abc.abstractmethod
    def to_numpy(self, arr: Any) -> Any:
        """A host ``numpy.ndarray`` view/copy of a backend array."""

    # -- linear algebra shims ----------------------------------------------
    @abc.abstractmethod
    def cho_factor(self, a: Any) -> Any:
        """Cholesky factorization in SciPy's ``(c, lower)`` convention.

        The returned object is opaque to callers; it only needs to round
        trip through this backend's :meth:`cho_solve`.
        """

    @abc.abstractmethod
    def cho_solve(self, factor: Any, b: Any, overwrite_b: bool = False) -> Any:
        """Solve ``A x = b`` given :meth:`cho_factor`'s output (``b`` may
        be a multi-column right-hand-side stack, shape ``(n, k)``).

        ``overwrite_b=True`` permits — does not require — the backend to
        clobber ``b`` as scratch (SciPy's ``potrs``-in-place path); the
        solution values are identical either way.  Backends without an
        in-place path accept and ignore the flag.
        """

    # -- out=-capable hot-loop operations ------------------------------------
    # Protocol-level defaults cover any NumPy-compatible namespace; the
    # engines route per-iteration temporaries into workspace buffers
    # through these.  With ``out=None`` each is exactly the expression it
    # replaces, so the fresh-allocation baseline shares the code path.

    def matmul(self, a: Any, b: Any, out: Any = None) -> Any:
        """``a @ b``, optionally accumulated into ``out``.

        The ``out=`` form uses the same GEMM accumulation order as the
        operator form — results are bit-identical, only the destination
        allocation differs.
        """
        if out is None:
            return self.xp.matmul(a, b)
        return self.xp.matmul(a, b, out=out)

    def solve(self, a: Any, b: Any, out: Any = None) -> Any:
        """Batched ``a x = b`` (``xp.linalg.solve`` semantics).

        ``out=`` avoids allocating the solution stack when the namespace
        supports a destination; the default falls back to a solve plus
        copy, which backends override when they can do better.
        """
        result = self.xp.linalg.solve(a, b)
        if out is None:
            return result
        out[...] = result
        return out

    def soft_threshold(self, v: Any, threshold: Any, out: Any = None) -> Any:
        """``sign(v) * max(|v| - threshold, 0)``, elementwise.

        The shrinkage operator of FISTA/ADMM.  The ``out=`` form fuses
        the pipeline into ``out`` (one sign temporary remains) and is
        bit-identical to the expression form, signed zeros included.
        """
        xp = self.xp
        if out is None:
            return xp.sign(v) * xp.maximum(xp.abs(v) - threshold, 0.0)
        sgn = xp.sign(v)
        xp.abs(v, out=out)
        out -= threshold
        xp.maximum(out, 0.0, out=out)
        out *= sgn
        return out

    # -- signal/coding shims -----------------------------------------------
    @abc.abstractmethod
    def first_order_iir(self, gain: float, decay: float, u: Any) -> Any:
        """The recurrence ``y[k] = gain * u[k] + decay * y[k-1]``.

        Exactly SciPy's ``lfilter([gain], [1, -decay], u)`` with the
        coefficient dtype following ``u`` — the ECGSYN exponential
        integrator, shape-preserving over a 1-D drive signal.
        """

    @abc.abstractmethod
    def packbits(self, bits: Any) -> Any:
        """``numpy.packbits`` semantics (big-endian within each byte)."""

    @abc.abstractmethod
    def bincount(self, values: Any, minlength: int = 0) -> Any:
        """``numpy.bincount`` semantics over non-negative integers."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"
