"""Optional PyTorch backend behind lazy import + capability detection.

Torch does not expose a NumPy-compatible module, so ``xp`` here is a
thin adapter (:class:`_TorchNamespace`) covering exactly the operation
surface the batched engines use — the protocol's real footprint, which
is deliberately small (see ``docs/backends.md`` for the list).  Name
bridges where the APIs diverge: ``rint``→``torch.round``,
``repeat``→``repeat_interleave``, ``flatnonzero``→``nonzero``.

CPU torch counts as available (it is a legitimate vectorized/JIT
backend on its own); CUDA placement is a future knob, not part of this
seam.  Like every non-reference backend this is a *fast* path: results
agree with NumPy/float64 to rounding, bounded by the differential
suites, never bit-for-bit.
"""

from __future__ import annotations

from typing import Any

from repro.backend.base import ArrayBackend, BackendUnavailableError
from repro.backend.registry import register_backend

__all__ = ["TorchBackend"]


def _import_torch() -> Any:
    try:
        import torch
    except Exception:  # pragma: no cover - exercised only without torch
        return None
    return torch


class _TorchLinalg:  # pragma: no cover - needs torch
    """The ``xp.linalg`` sub-namespace the engines touch."""

    def __init__(self, torch: Any) -> None:
        self._torch = torch

    def norm(self, arr: Any, axis: Any = None) -> Any:
        return self._torch.linalg.vector_norm(arr, dim=axis)


class _TorchNamespace:  # pragma: no cover - needs torch
    """NumPy-shaped adapter over ``torch`` for the engine op surface."""

    def __init__(self, torch: Any) -> None:
        self._torch = torch
        self.float64 = torch.float64
        self.float32 = torch.float32
        self.int64 = torch.int64
        self.bool_ = torch.bool
        self.pi = 3.141592653589793
        self.linalg = _TorchLinalg(torch)

    def asarray(self, values: Any, dtype: Any = None) -> Any:
        return self._torch.as_tensor(values, dtype=dtype)

    def ascontiguousarray(self, values: Any, dtype: Any = None) -> Any:
        return self._torch.as_tensor(values, dtype=dtype).contiguous()

    def zeros(self, shape: Any, dtype: Any = None) -> Any:
        return self._torch.zeros(shape, dtype=dtype)

    def zeros_like(self, arr: Any) -> Any:
        return self._torch.zeros_like(arr)

    def empty(self, shape: Any, dtype: Any = None) -> Any:
        return self._torch.empty(shape, dtype=dtype)

    def empty_like(self, arr: Any) -> Any:
        return self._torch.empty_like(arr)

    def full(self, shape: Any, value: Any, dtype: Any = None) -> Any:
        return self._torch.full(
            (shape,) if isinstance(shape, int) else tuple(shape), value, dtype=dtype
        )

    def eye(self, n: int, dtype: Any = None) -> Any:
        return self._torch.eye(n, dtype=dtype)

    def arange(self, n: int) -> Any:
        return self._torch.arange(n)

    def stack(self, arrays: Any, axis: int = 0) -> Any:
        return self._torch.stack(list(arrays), dim=axis)

    def repeat(self, arr: Any, k: int, axis: int) -> Any:
        return self._torch.repeat_interleave(arr, k, dim=axis)

    def sign(self, arr: Any) -> Any:
        return self._torch.sign(arr)

    def abs(self, arr: Any) -> Any:
        return self._torch.abs(arr)

    def maximum(self, a: Any, b: Any) -> Any:
        t = self._torch
        if not t.is_tensor(b):
            b = t.as_tensor(b, dtype=a.dtype)
        return t.maximum(a, b)

    def sqrt(self, arr: Any) -> Any:
        t = self._torch
        return t.sqrt(arr if t.is_tensor(arr) else t.as_tensor(arr))

    def exp(self, arr: Any) -> Any:
        return self._torch.exp(arr)

    def sin(self, arr: Any) -> Any:
        return self._torch.sin(arr)

    def sum(self, arr: Any, axis: Any = None) -> Any:
        return self._torch.sum(arr, dim=axis) if axis is not None else self._torch.sum(arr)

    def any(self, arr: Any) -> Any:
        return self._torch.any(arr)

    def rint(self, arr: Any) -> Any:
        return self._torch.round(arr)

    def flatnonzero(self, arr: Any) -> Any:
        return self._torch.nonzero(arr.reshape(-1)).reshape(-1)


@register_backend
class TorchBackend(ArrayBackend):
    """PyTorch backend over the adapter namespace (optional dependency)."""

    name = "torch"

    @classmethod
    def available(cls) -> bool:
        return _import_torch() is not None

    def __init__(self) -> None:
        torch = _import_torch()
        if torch is None:
            raise BackendUnavailableError(
                "torch backend needs the torch package installed"
            )
        self._torch = torch  # pragma: no cover - needs torch
        self._xp = _TorchNamespace(torch)  # pragma: no cover

    # Exercised only where torch is installed; the differential suites
    # in tests/backend are the executable spec for these shims.
    @property
    def xp(self) -> Any:  # pragma: no cover - needs torch
        return self._xp

    def asarray(self, values: Any, dtype: Any = None) -> Any:  # pragma: no cover
        return self._torch.as_tensor(values, dtype=dtype)

    def to_numpy(self, arr: Any) -> Any:  # pragma: no cover
        return arr.detach().cpu().numpy()

    def cho_factor(self, a: Any) -> Any:  # pragma: no cover
        return (self._torch.linalg.cholesky(a), True)

    def cho_solve(
        self, factor: Any, b: Any, overwrite_b: bool = False
    ) -> Any:  # pragma: no cover
        # overwrite_b accepted for protocol parity; cholesky_solve
        # always writes a fresh output tensor.
        lower_factor, _ = factor
        return self._torch.cholesky_solve(b, lower_factor, upper=False)

    def matmul(self, a: Any, b: Any, out: Any = None) -> Any:  # pragma: no cover
        if out is None:
            return self._torch.matmul(a, b)
        return self._torch.matmul(a, b, out=out)

    def solve(self, a: Any, b: Any, out: Any = None) -> Any:  # pragma: no cover
        if out is None:
            return self._torch.linalg.solve(a, b)
        return self._torch.linalg.solve(a, b, out=out)

    def soft_threshold(
        self, v: Any, threshold: Any, out: Any = None
    ) -> Any:  # pragma: no cover
        t = self._torch
        if out is None:
            return t.sign(v) * t.clamp(t.abs(v) - threshold, min=0.0)
        sgn = t.sign(v)
        t.abs(v, out=out)
        out -= threshold
        t.clamp(out, min=0.0, out=out)
        out *= sgn
        return out

    def first_order_iir(self, gain: float, decay: float, u: Any) -> Any:  # pragma: no cover
        # No torch lfilter in the base package: run the recurrence on
        # the host reference backend and move the result back.
        from repro.backend.registry import get_backend

        host = get_backend("numpy")
        y = host.first_order_iir(gain, decay, self.to_numpy(u))
        return self._torch.as_tensor(y, dtype=u.dtype)

    def packbits(self, bits: Any) -> Any:  # pragma: no cover
        from repro.backend.registry import get_backend

        host = get_backend("numpy")
        return self._torch.as_tensor(host.packbits(self.to_numpy(bits)))

    def bincount(self, values: Any, minlength: int = 0) -> Any:  # pragma: no cover
        return self._torch.bincount(values, minlength=minlength)
