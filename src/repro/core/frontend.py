"""Node-side front-ends: hybrid (CS + low-res) and normal CS.

:class:`HybridFrontEnd` implements the transmitter half of the paper's
Fig. 1: every fixed window of acquisition codes is

1. measured by the CS path — the RMPI-equivalent ``y = Φ x`` on the
   baseline-centered window, digitized at ``measurement_bits``;
2. re-quantized to ``lowres_bits`` on the parallel path, differenced and
   Huffman-coded with the offline codebook;
3. framed into a :class:`~repro.core.packets.WindowPacket`.

:class:`NormalCsFrontEnd` is the single-path baseline ("CS" in Figs. 7-8):
identical CS path, no parallel channel.

Both are deterministic functions of the shared
:class:`~repro.core.config.FrontEndConfig` (plus the trained codebook), so
a receiver built from the same config can invert every step that is
invertible.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.coding.codebook import DifferenceCodebook
from repro.core.config import FrontEndConfig
from repro.devtools.contracts import check_dtype, check_shape
from repro.core.packets import WindowPacket
from repro.core.windowing import WindowFramer
from repro.sensing.quantizers import (
    UniformQuantizer,
    measurement_quantizer,
    requantize_codes,
)
from repro.signals.records import Record

__all__ = ["HybridFrontEnd", "NormalCsFrontEnd"]


class _CsPath:
    """Shared CS-path machinery: Φ construction and measurement ADC."""

    def __init__(self, config: FrontEndConfig) -> None:
        self.config = config
        self.phi = config.sensing.build(config.n_measurements, config.window_len)
        # Signals are centered codes, bounded by half the acquisition range.
        self.center = 1 << (config.acquisition_bits - 1)
        self.quantizer: UniformQuantizer = measurement_quantizer(
            self.phi, float(self.center), config.measurement_bits
        )

    def check_window(self, codes: np.ndarray) -> np.ndarray:
        """Validate one window of acquisition codes; returns shape ``(n,)``."""
        arr = check_shape(codes, (self.config.window_len,), name="codes")
        arr = check_dtype(arr, "integer", name="codes")
        if arr.size and (
            arr.min() < 0 or arr.max() >= (1 << self.config.acquisition_bits)
        ):
            raise ValueError(
                f"codes out of range for {self.config.acquisition_bits}-bit acquisition"
            )
        return arr

    def measure(self, codes: np.ndarray) -> np.ndarray:
        """CS measurement codes for one window; int array of shape ``(m,)``."""
        centered = self.check_window(codes).astype(float) - self.center
        y = self.phi @ centered
        return self.quantizer.quantize(y)


class HybridFrontEnd:
    """The transmitter of the hybrid front-end (paper Fig. 1).

    Parameters
    ----------
    config:
        Shared link configuration.
    codebook:
        Offline-trained difference codebook; its resolution must match
        ``config.lowres_bits``.
    """

    def __init__(self, config: FrontEndConfig, codebook: DifferenceCodebook) -> None:
        if codebook.resolution_bits != config.lowres_bits:
            raise ValueError(
                f"codebook trained for {codebook.resolution_bits}-bit streams but "
                f"config uses {config.lowres_bits}-bit low-res channel"
            )
        self.config = config
        self.codebook = codebook
        self._cs = _CsPath(config)

    @property
    def phi(self) -> np.ndarray:
        """The CS path's sensing matrix, shape ``(m, n)`` (receiver rebuilds it)."""
        return self._cs.phi

    def lowres_codes(self, codes: np.ndarray) -> np.ndarray:
        """The parallel channel's B-bit output for one window, shape ``(n,)``."""
        arr = self._cs.check_window(codes)
        return requantize_codes(
            arr, self.config.acquisition_bits, self.config.lowres_bits
        )

    def process_window(self, codes: np.ndarray, window_index: int = 0) -> WindowPacket:
        """Acquire and frame one window of acquisition codes."""
        y_codes = self._cs.measure(codes)
        lowres = self.lowres_codes(codes)
        payload, bit_length = self.codebook.encode_window(lowres)
        return WindowPacket(
            window_index=window_index,
            n=self.config.window_len,
            measurement_codes=y_codes,
            measurement_bits=self.config.measurement_bits,
            lowres_payload=payload,
            lowres_bit_length=bit_length,
        )

    def process_stream(self, samples: Iterable[np.ndarray]) -> List[WindowPacket]:
        """Frame an arbitrary chunked sample stream into packets."""
        framer = WindowFramer(self.config.window_len)
        packets: List[WindowPacket] = []
        for chunk in samples:
            for window in framer.push(np.asarray(chunk)):
                packets.append(self.process_window(window, len(packets)))
        return packets

    def process_record(
        self, record: Record, max_windows: Optional[int] = None
    ) -> List[WindowPacket]:
        """Process a whole record window by window."""
        if record.header.resolution_bits != self.config.acquisition_bits:
            raise ValueError(
                "record resolution does not match the configured acquisition depth"
            )
        packets: List[WindowPacket] = []
        for idx, window in enumerate(record.windows(self.config.window_len)):
            if max_windows is not None and idx >= max_windows:
                break
            packets.append(self.process_window(window, idx))
        return packets


class NormalCsFrontEnd:
    """Single-path CS transmitter — the paper's "normal CS" baseline."""

    def __init__(self, config: FrontEndConfig) -> None:
        self.config = config
        self._cs = _CsPath(config)

    @property
    def phi(self) -> np.ndarray:
        """The sensing matrix, shape ``(m, n)``."""
        return self._cs.phi

    def process_window(self, codes: np.ndarray, window_index: int = 0) -> WindowPacket:
        """Acquire and frame one window (empty low-res payload)."""
        y_codes = self._cs.measure(codes)
        return WindowPacket(
            window_index=window_index,
            n=self.config.window_len,
            measurement_codes=y_codes,
            measurement_bits=self.config.measurement_bits,
            lowres_payload=b"",
            lowres_bit_length=0,
        )

    def process_record(
        self, record: Record, max_windows: Optional[int] = None
    ) -> List[WindowPacket]:
        """Process a whole record window by window."""
        if record.header.resolution_bits != self.config.acquisition_bits:
            raise ValueError(
                "record resolution does not match the configured acquisition depth"
            )
        packets: List[WindowPacket] = []
        for idx, window in enumerate(record.windows(self.config.window_len)):
            if max_windows is not None and idx >= max_windows:
                break
            packets.append(self.process_window(window, idx))
        return packets
