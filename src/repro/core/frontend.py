"""Node-side front-ends: hybrid (CS + low-res) and normal CS.

:class:`HybridFrontEnd` implements the transmitter half of the paper's
Fig. 1: every fixed window of acquisition codes is

1. measured by the CS path — the RMPI-equivalent ``y = Φ x`` on the
   baseline-centered window, digitized at ``measurement_bits``;
2. re-quantized to ``lowres_bits`` on the parallel path, differenced and
   Huffman-coded with the offline codebook;
3. framed into a :class:`~repro.core.packets.WindowPacket`.

:class:`NormalCsFrontEnd` is the single-path baseline ("CS" in Figs. 7-8):
identical CS path, no parallel channel.

Both are deterministic functions of the shared
:class:`~repro.core.config.FrontEndConfig` (plus the trained codebook), so
a receiver built from the same config can invert every step that is
invertible.

Each front-end offers two equivalent execution paths: the scalar
reference (:meth:`process_window` / :meth:`process_record_loop`) and the
batch engine (:meth:`encode_windows`), which stacks windows into a
matrix and runs measurement, requantization and entropy coding as array
kernels — bit-identical output, see ``docs/encoding.md``.  Record- and
stream-level entry points dispatch on ``config.encode.batched``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.coding.codebook import DifferenceCodebook
from repro.core.config import FrontEndConfig
from repro.core.encode_batch import measure_window_stack
from repro.devtools.contracts import check_dtype, check_shape
from repro.core.packets import WindowPacket
from repro.core.windowing import WindowFramer
from repro.sensing.quantizers import (
    UniformQuantizer,
    measurement_quantizer,
    requantize_codes,
)
from repro.signals.records import Record

__all__ = ["HybridFrontEnd", "NormalCsFrontEnd"]


class _CsPath:
    """Shared CS-path machinery: Φ construction and measurement ADC."""

    def __init__(self, config: FrontEndConfig) -> None:
        self.config = config
        self.phi = config.sensing.build(config.n_measurements, config.window_len)
        # Signals are centered codes, bounded by half the acquisition range.
        self.center = 1 << (config.acquisition_bits - 1)
        self.quantizer: UniformQuantizer = measurement_quantizer(
            self.phi, float(self.center), config.measurement_bits
        )

    def check_window(self, codes: np.ndarray) -> np.ndarray:
        """Validate one window of acquisition codes; returns shape ``(n,)``."""
        arr = check_shape(codes, (self.config.window_len,), name="codes")
        arr = check_dtype(arr, "integer", name="codes")
        if arr.size and (
            arr.min() < 0 or arr.max() >= (1 << self.config.acquisition_bits)
        ):
            raise ValueError(
                f"codes out of range for {self.config.acquisition_bits}-bit acquisition"
            )
        return arr

    def measure(self, codes: np.ndarray) -> np.ndarray:
        """CS measurement codes for one window; int array of shape ``(m,)``."""
        centered = self.check_window(codes).astype(float) - self.center
        y = self.phi @ centered
        return self.quantizer.quantize(y)

    def check_window_stack(self, windows) -> np.ndarray:
        """Validate a stack of acquisition windows; returns shape ``(w, n)`` ints."""
        arr = np.asarray(windows)
        if arr.ndim != 2:
            raise ValueError("expected a (windows, n) stack of code windows")
        arr = check_shape(
            arr, (arr.shape[0], self.config.window_len), name="windows"
        )
        arr = check_dtype(arr, "integer", name="windows")
        if arr.size and (
            arr.min() < 0 or arr.max() >= (1 << self.config.acquisition_bits)
        ):
            raise ValueError(
                f"codes out of range for {self.config.acquisition_bits}-bit acquisition"
            )
        return arr

    def measure_stack(self, windows: np.ndarray) -> np.ndarray:
        """Measurement codes for a validated window stack; shape ``(w, m)``.

        One GEMM plus the quantizer boundary guard of
        :func:`repro.core.encode_batch.measure_window_stack`, so every row
        equals ``measure(windows[i])`` bit for bit at the default (exact)
        ``config.backend``; fast backends trade bounded code deltas for
        throughput (see ``docs/backends.md``).
        """
        centered = windows.astype(float) - self.center
        return measure_window_stack(
            self.phi,
            self.quantizer,
            centered,
            self.config.encode.boundary_guard,
            settings=self.config.backend,
        )


class HybridFrontEnd:
    """The transmitter of the hybrid front-end (paper Fig. 1).

    Parameters
    ----------
    config:
        Shared link configuration.
    codebook:
        Offline-trained difference codebook; its resolution must match
        ``config.lowres_bits``.
    """

    def __init__(self, config: FrontEndConfig, codebook: DifferenceCodebook) -> None:
        if codebook.resolution_bits != config.lowres_bits:
            raise ValueError(
                f"codebook trained for {codebook.resolution_bits}-bit streams but "
                f"config uses {config.lowres_bits}-bit low-res channel"
            )
        self.config = config
        self.codebook = codebook
        self._cs = _CsPath(config)

    @property
    def phi(self) -> np.ndarray:
        """The CS path's sensing matrix, shape ``(m, n)`` (receiver rebuilds it)."""
        return self._cs.phi

    def lowres_codes(self, codes: np.ndarray) -> np.ndarray:
        """The parallel channel's B-bit output for one window, shape ``(n,)``."""
        arr = self._cs.check_window(codes)
        return requantize_codes(
            arr, self.config.acquisition_bits, self.config.lowres_bits
        )

    def process_window(self, codes: np.ndarray, window_index: int = 0) -> WindowPacket:
        """Acquire and frame one window of acquisition codes."""
        y_codes = self._cs.measure(codes)
        lowres = self.lowres_codes(codes)
        payload, bit_length = self.codebook.encode_window(lowres)
        return WindowPacket(
            window_index=window_index,
            n=self.config.window_len,
            measurement_codes=y_codes,
            measurement_bits=self.config.measurement_bits,
            lowres_payload=payload,
            lowres_bit_length=bit_length,
        )

    def encode_windows(
        self,
        windows,
        indices: Optional[Sequence[int]] = None,
        start_index: int = 0,
    ) -> List[WindowPacket]:
        """Batch-encode a stack of windows; bit-identical to the scalar path.

        ``windows`` is a ``(w, n)`` matrix (or a sequence of ``(n,)``
        windows); packet ``i`` gets ``indices[i]`` (default
        ``start_index + i``) and equals ``process_window(windows[i], ...)``
        byte for byte.
        """
        stack = self._cs.check_window_stack(windows)
        indices = _resolve_indices(stack.shape[0], indices, start_index)
        y_codes = self._cs.measure_stack(stack)
        lowres = requantize_codes(
            stack, self.config.acquisition_bits, self.config.lowres_bits
        )
        encoded = self.codebook.encode_windows(lowres)
        return [
            WindowPacket(
                window_index=index,
                n=self.config.window_len,
                measurement_codes=y_codes[i],
                measurement_bits=self.config.measurement_bits,
                lowres_payload=payload,
                lowres_bit_length=bit_length,
            )
            for i, (index, (payload, bit_length)) in enumerate(
                zip(indices, encoded)
            )
        ]

    def process_stream(self, samples: Iterable[np.ndarray]) -> List[WindowPacket]:
        """Frame an arbitrary chunked sample stream into packets."""
        framer = WindowFramer(self.config.window_len)
        if self.config.encode.batched:
            windows = [
                window
                for chunk in samples
                for window in framer.push(np.asarray(chunk))
            ]
            if not windows:
                return []
            return self.encode_windows(np.stack(windows))
        packets: List[WindowPacket] = []
        for chunk in samples:
            for window in framer.push(np.asarray(chunk)):
                packets.append(self.process_window(window, len(packets)))
        return packets

    def process_record(
        self, record: Record, max_windows: Optional[int] = None
    ) -> List[WindowPacket]:
        """Process a whole record (batch engine unless ``encode.batched`` off)."""
        windows = _collect_record_windows(self.config, record, max_windows)
        if not self.config.encode.batched:
            return [self.process_window(w, idx) for idx, w in enumerate(windows)]
        if not windows:
            return []
        return self.encode_windows(np.stack(windows))

    def process_record_loop(
        self, record: Record, max_windows: Optional[int] = None
    ) -> List[WindowPacket]:
        """Scalar per-window reference path (differential oracle / bench)."""
        windows = _collect_record_windows(self.config, record, max_windows)
        return [self.process_window(w, idx) for idx, w in enumerate(windows)]


class NormalCsFrontEnd:
    """Single-path CS transmitter — the paper's "normal CS" baseline."""

    def __init__(self, config: FrontEndConfig) -> None:
        self.config = config
        self._cs = _CsPath(config)

    @property
    def phi(self) -> np.ndarray:
        """The sensing matrix, shape ``(m, n)``."""
        return self._cs.phi

    def process_window(self, codes: np.ndarray, window_index: int = 0) -> WindowPacket:
        """Acquire and frame one window (empty low-res payload)."""
        y_codes = self._cs.measure(codes)
        return WindowPacket(
            window_index=window_index,
            n=self.config.window_len,
            measurement_codes=y_codes,
            measurement_bits=self.config.measurement_bits,
            lowres_payload=b"",
            lowres_bit_length=0,
        )

    def encode_windows(
        self,
        windows,
        indices: Optional[Sequence[int]] = None,
        start_index: int = 0,
    ) -> List[WindowPacket]:
        """Batch-measure a stack of windows; bit-identical to the scalar path."""
        stack = self._cs.check_window_stack(windows)
        indices = _resolve_indices(stack.shape[0], indices, start_index)
        y_codes = self._cs.measure_stack(stack)
        return [
            WindowPacket(
                window_index=index,
                n=self.config.window_len,
                measurement_codes=y_codes[i],
                measurement_bits=self.config.measurement_bits,
                lowres_payload=b"",
                lowres_bit_length=0,
            )
            for i, index in enumerate(indices)
        ]

    def process_record(
        self, record: Record, max_windows: Optional[int] = None
    ) -> List[WindowPacket]:
        """Process a whole record (batch engine unless ``encode.batched`` off)."""
        windows = _collect_record_windows(self.config, record, max_windows)
        if not self.config.encode.batched:
            return [self.process_window(w, idx) for idx, w in enumerate(windows)]
        if not windows:
            return []
        return self.encode_windows(np.stack(windows))

    def process_record_loop(
        self, record: Record, max_windows: Optional[int] = None
    ) -> List[WindowPacket]:
        """Scalar per-window reference path (differential oracle / bench)."""
        windows = _collect_record_windows(self.config, record, max_windows)
        return [self.process_window(w, idx) for idx, w in enumerate(windows)]


def _collect_record_windows(
    config: FrontEndConfig, record: Record, max_windows: Optional[int]
) -> List[np.ndarray]:
    """The record's full windows, capped at ``max_windows``."""
    if record.header.resolution_bits != config.acquisition_bits:
        raise ValueError(
            "record resolution does not match the configured acquisition depth"
        )
    windows: List[np.ndarray] = []
    for idx, window in enumerate(record.windows(config.window_len)):
        if max_windows is not None and idx >= max_windows:
            break
        windows.append(window)
    return windows


def _resolve_indices(
    n_windows: int, indices: Optional[Sequence[int]], start_index: int
) -> List[int]:
    """Window indices for a batch: explicit list or a run from start_index."""
    if indices is None:
        return list(range(start_index, start_index + n_windows))
    resolved = [int(i) for i in indices]
    if len(resolved) != n_windows:
        raise ValueError("indices must match the number of windows")
    return resolved
