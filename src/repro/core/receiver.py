"""Receiver-side decode and reconstruction (right half of paper Fig. 1).

From a :class:`~repro.core.packets.WindowPacket` and the shared config,
the receiver

1. rebuilds the sensing matrix and measurement quantizer (offline state),
2. dequantizes the CS measurements and sizes the fidelity radius σ from
   the known quantization noise,
3. decodes the Huffman low-res payload back into the B-bit samples and
   converts them to the per-sample box ``[x_dot, x_dot + d - 1]`` on the
   acquisition-code grid (the Eq. 1 bounds),
4. solves hybrid BPDN (Eq. 1) — or plain BPDN for a normal-CS packet —
   and returns the reconstruction in acquisition-code units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.coding.codebook import DifferenceCodebook
from repro.core.config import FrontEndConfig
from repro.core.packets import WindowPacket
from repro.devtools.contracts import check_dtype, check_shape
from repro.recovery.bpdn import solve_bpdn
from repro.recovery.bsbl import (
    lowres_cell_stats,
    measurement_noise_var,
    solve_bsbl,
    solve_bsbl_dequant,
)
from repro.recovery.hybrid import solve_hybrid
from repro.recovery.methods import MethodSpec, resolve_method
from repro.recovery.opcache import problem_for_config
from repro.recovery.result import RecoveryResult
from repro.sensing.quantizers import lowres_bounds, measurement_quantizer

__all__ = ["WindowReconstruction", "HybridReceiver"]


@dataclass(frozen=True)
class WindowReconstruction:
    """Receiver output for one window.

    ``x_codes`` is the reconstructed waveform on the (float) acquisition-
    code grid, directly comparable to ``record.adu``; ``recovery`` carries
    the solver diagnostics; ``lowres_codes`` is the decoded parallel-path
    stream (``None`` for normal-CS packets).
    """

    window_index: int
    x_codes: np.ndarray
    recovery: RecoveryResult
    lowres_codes: Optional[np.ndarray]

    def x_centered(self, center: int) -> np.ndarray:
        """The reconstruction re-centered; same shape as ``x_codes``."""
        return self.x_codes - center


class HybridReceiver:
    """Decodes packets produced by either front-end under a shared config.

    Parameters
    ----------
    config:
        Must equal the transmitter's config.
    codebook:
        The shared offline codebook; only needed to decode hybrid packets
        (may be ``None`` for a normal-CS-only receiver).
    method:
        Optional registered method name (see
        :mod:`repro.recovery.methods`).  ``None`` keeps the historical
        payload-driven dispatch (Eq. 1 when the packet carries a low-res
        payload, plain BPDN otherwise); a named method pins the solver
        family — in particular ``"bsbl"``/``"bsbl-dequant"`` route to the
        Bayesian solvers.  Methods that consume the low-res path degrade
        to their payload-less sibling on a stripped packet, which is the
        streaming CRC-fallback contract.
    """

    def __init__(
        self,
        config: FrontEndConfig,
        codebook: Optional[DifferenceCodebook] = None,
        method: Optional[str] = None,
    ) -> None:
        if codebook is not None and codebook.resolution_bits != config.lowres_bits:
            raise ValueError("codebook resolution does not match the config")
        self.config = config
        self.codebook = codebook
        self.method_spec: Optional[MethodSpec] = (
            None if method is None else resolve_method(method)
        )
        # Composed operator — pulled from the process-wide ProblemCache
        # when ``config.recovery.cache_problems`` is on, so receivers at
        # the same operating point share one ΦΨ and its factorizations.
        self.problem = problem_for_config(config)
        self.basis = self.problem.basis
        self.phi = self.problem.phi
        self.center = 1 << (config.acquisition_bits - 1)
        self.quantizer = measurement_quantizer(
            self.phi, float(self.center), config.measurement_bits
        )

    def sigma(self) -> float:
        """Fidelity radius for Eq. 1 from measurement-quantization noise.

        Per-measurement quantization error is uniform in ``±step/2``
        (variance ``step^2/12``); the 2-norm over ``m`` measurements
        concentrates around ``sqrt(m) * step / sqrt(12)`` and
        ``sigma_safety`` adds slack for the tail.
        """
        m = self.config.n_measurements
        return (
            self.config.sigma_safety
            * np.sqrt(m)
            * self.quantizer.step
            / np.sqrt(12.0)
        )

    def noise_var(self) -> float:
        """Measurement-noise variance for the Bayesian family.

        The same quantization-noise model as :meth:`sigma`, expressed as
        a per-measurement variance for the Gaussian likelihood, with
        ``config.recovery.bsbl.noise_scale`` playing ``sigma_safety``'s
        slack role.
        """
        return measurement_noise_var(
            self.quantizer.step, self.config.recovery.bsbl.noise_scale
        )

    def decode_measurements(self, packet: WindowPacket) -> np.ndarray:
        """Measurement codes back to centered-domain values, shape ``(m,)``."""
        codes = check_shape(
            packet.measurement_codes,
            (self.config.n_measurements,),
            name="measurement_codes",
        )
        codes = check_dtype(codes, "integer", name="measurement_codes")
        return self.quantizer.reconstruct(codes)

    def decode_lowres(self, packet: WindowPacket) -> np.ndarray:
        """The parallel path's B-bit samples, shape ``(n,)``, from the payload."""
        if self.codebook is None:
            raise ValueError("receiver has no codebook to decode low-res payloads")
        if packet.lowres_bit_length == 0:
            raise ValueError("packet carries no low-res payload")
        return self.codebook.decode_window(
            packet.lowres_payload, packet.n, packet.lowres_bit_length
        )

    def reconstruct(
        self,
        packet: WindowPacket,
        alpha0: Optional[np.ndarray] = None,
    ) -> WindowReconstruction:
        """Full receiver pipeline for one packet.

        Without a pinned method, hybrid packets (non-empty low-res
        payload) get the Eq. 1 solve and normal-CS packets fall back to
        plain BPDN; a pinned method routes through its registered solver
        instead (Bayesian methods included), degrading to the
        payload-less sibling when the packet arrives stripped.
        ``alpha0`` optionally warm-starts the solver — typically the
        previous window's coefficients in a streaming session.
        """
        if packet.n != self.config.window_len:
            raise ValueError("packet window length does not match the config")
        if packet.m != self.config.n_measurements:
            raise ValueError("packet measurement count does not match the config")
        y = self.decode_measurements(packet)
        has_payload = packet.lowres_bit_length > 0

        if self.method_spec is None:
            solver = "eq1" if has_payload else "bpdn"
        else:
            solver = self.method_spec.solver
        if not has_payload:
            # Stripped packet (CRC fallback) through a payload-consuming
            # link: degrade to the measurements-only sibling.
            solver = {"eq1": "bpdn", "bsbl-dequant": "bsbl"}.get(solver, solver)

        lowres = None
        bounds = None
        if solver in ("eq1", "bsbl-dequant"):
            lowres = self.decode_lowres(packet)
            lower, upper = lowres_bounds(
                lowres, self.config.acquisition_bits, self.config.lowres_bits
            )
            bounds = (lower - self.center, upper - self.center)

        if solver == "eq1":
            result = solve_hybrid(
                self.phi,
                self.basis,
                y,
                self.sigma(),
                bounds[0],
                bounds[1],
                settings=self.config.solver,
                problem=self.problem,
                alpha0=alpha0,
            )
        elif solver == "bpdn":
            result = solve_bpdn(
                self.phi,
                self.basis,
                y,
                self.sigma(),
                settings=self.config.solver,
                problem=self.problem,
                alpha0=alpha0,
            )
        elif solver == "bsbl":
            result = solve_bsbl(
                self.phi,
                self.basis,
                y,
                self.noise_var(),
                settings=self.config.recovery.bsbl,
                problem=self.problem,
                alpha0=alpha0,
            )
        elif solver == "bsbl-dequant":
            mid, quant_var = lowres_cell_stats(bounds[0], bounds[1])
            result = solve_bsbl_dequant(
                self.phi,
                self.basis,
                y,
                self.noise_var(),
                mid,
                quant_var,
                settings=self.config.recovery.bsbl,
                problem=self.problem,
                alpha0=alpha0,
            )
        else:  # pragma: no cover - the registry only emits the above
            raise ValueError(f"unknown solver key {solver!r}")
        x_codes = result.x + self.center
        return WindowReconstruction(
            window_index=packet.window_index,
            x_codes=x_codes,
            recovery=result,
            lowres_codes=lowres,
        )
