"""Shared configuration of the hybrid front-end (node + receiver).

On real hardware the node and the receiver agree offline on the window
length, chipping-sequence seed, quantizer depths and the Huffman codebook.
:class:`FrontEndConfig` is that agreement in one immutable object: both
sides of the link are constructed from the *same* config, which is what
makes the end-to-end pipeline bit-faithful.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from repro.backend import BackendSettings
from repro.core.encode_batch import EncodeEngineSettings
from repro.metrics.compression import ORIGINAL_RESOLUTION_BITS, cs_channel_cr
from repro.recovery.opcache import RecoveryEngineSettings
from repro.recovery.pdhg import PdhgSettings
from repro.sensing.matrices import SensingSpec

__all__ = ["FrontEndConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class FrontEndConfig:
    """Everything node and receiver must share.

    Attributes
    ----------
    window_len:
        Samples per fixed processing window (``n``); must suit the wavelet
        depth (512 = 2^9 by default).
    n_measurements:
        CS measurements per window (``m``, = RMPI channels).
    lowres_bits:
        Resolution of the parallel low-resolution channel (paper trade-off
        point: 7).
    acquisition_bits:
        Resolution of the underlying high-resolution acquisition the
        low-res channel is derived from (11 for MIT-BIH-class records).
    measurement_bits:
        Quantization depth of the transmitted CS measurements (the paper
        accounts measurements at the original 12-bit resolution).
    basis_spec:
        Sparsifying basis name for :func:`repro.wavelets.make_basis`.
    sensing:
        Measurement-ensemble spec (kind + chipping seed).
    solver:
        PDHG iteration controls used at the receiver.
    sigma_safety:
        Multiplier on the measurement-quantization noise 2-norm used as
        the fidelity radius σ in Eq. 1.
    recovery:
        Receiver-side engine controls: operator caching, streaming
        warm starts and the batched-solve chunk size.  Purely a
        receiver-efficiency knob — it never changes what the node
        transmits, so it is safe to vary per deployment.
    encode:
        Node-side engine controls: whether whole window stacks go
        through the batched encode engine (bit-identical to the scalar
        path; see ``docs/encoding.md``) and its quantizer boundary
        guard.  Like ``recovery``, an efficiency knob only.
    backend:
        Array backend + precision the batched engines execute on (see
        ``docs/backends.md``).  The default (NumPy/float64) is the exact
        path; anything else is a fast path whose deviation from the
        exact outputs is measured, not assumed — unlike ``recovery`` /
        ``encode`` this knob *can* change transmitted bytes and
        recovered samples within the documented differential bounds.
    """

    window_len: int = 512
    n_measurements: int = 96
    lowres_bits: int = 7
    acquisition_bits: int = 11
    measurement_bits: int = ORIGINAL_RESOLUTION_BITS
    basis_spec: str = "db4"
    sensing: SensingSpec = field(default_factory=SensingSpec)
    solver: PdhgSettings = field(default_factory=PdhgSettings)
    sigma_safety: float = 2.0
    recovery: RecoveryEngineSettings = field(
        default_factory=RecoveryEngineSettings
    )
    encode: EncodeEngineSettings = field(default_factory=EncodeEngineSettings)
    backend: BackendSettings = field(default_factory=BackendSettings)

    def __post_init__(self) -> None:
        if self.window_len <= 0:
            raise ValueError("window_len must be positive")
        if not 1 <= self.n_measurements <= self.window_len:
            raise ValueError(
                "n_measurements must be in [1, window_len]"
            )
        if not 1 <= self.lowres_bits <= self.acquisition_bits:
            raise ValueError(
                "lowres_bits must be in [1, acquisition_bits]"
            )
        if self.measurement_bits <= 0:
            raise ValueError("measurement_bits must be positive")
        if self.sigma_safety < 0:
            raise ValueError("sigma_safety cannot be negative")

    @property
    def cs_cr_percent(self) -> float:
        """CS-channel compression ratio this config realises (Eq. 3)."""
        return cs_channel_cr(self.window_len, self.n_measurements)

    @property
    def delta(self) -> float:
        """Undersampling ratio m/n (the paper's δ)."""
        return self.n_measurements / self.window_len

    @property
    def lowres_step_codes(self) -> int:
        """Quantization cell width ``d`` in acquisition-code units."""
        return 1 << (self.acquisition_bits - self.lowres_bits)

    def with_measurements(self, m: int) -> "FrontEndConfig":
        """Same config at a different measurement count (CR sweeps)."""
        return replace(self, n_measurements=m)

    def with_lowres_bits(self, bits: int) -> "FrontEndConfig":
        """Same config at a different low-res resolution (ablations)."""
        return replace(self, lowres_bits=bits)

    def with_backend(
        self, name: str, precision: str = "float64"
    ) -> "FrontEndConfig":
        """Same config on a different backend/precision (bench comparisons)."""
        return replace(
            self, backend=BackendSettings(name=name, precision=precision)
        )

    def for_cr(self, cr_percent: float) -> "FrontEndConfig":
        """Config whose measurement count realises the given CS-channel CR."""
        from repro.metrics.compression import measurements_for_cr

        m = measurements_for_cr(self.window_len, cr_percent)
        return self.with_measurements(max(1, m))


#: The paper's operating point: 512-sample windows, 7-bit parallel channel,
#: db4 sparsifying basis, Bernoulli (RMPI-equivalent) sensing.
DEFAULT_CONFIG = FrontEndConfig()
