"""Outcome containers shared by the pipeline and the execution engine.

:class:`WindowOutcome` is the scored result of one window-level task
(the last stage of the ``encode → transport → recover → score`` graph in
:mod:`repro.runtime`); :class:`RecordOutcome` aggregates one record's
windows the way the paper reports them (window averages for Fig. 7,
per-record box stats for Fig. 8).

These used to live in :mod:`repro.core.pipeline`; they are re-exported
there for compatibility, but are defined here so the runtime layer can
depend on them without importing the pipeline's convenience wrappers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.metrics.compression import CompressionBudget
from repro.metrics.quality import mean_snr_over_windows

__all__ = ["WindowOutcome", "RecordOutcome"]


@dataclass(frozen=True)
class WindowOutcome:
    """Quality and bit accounting for one reconstructed window."""

    window_index: int
    prd_percent: float
    snr_db: float
    budget: CompressionBudget
    solver_iterations: int
    solver_converged: bool


@dataclass(frozen=True)
class RecordOutcome:
    """Aggregated outcome of running one record through one method."""

    record_name: str
    method: str
    windows: Tuple[WindowOutcome, ...]

    def __post_init__(self) -> None:
        if not self.windows:
            raise ValueError("record outcome needs at least one window")

    @property
    def prds(self) -> np.ndarray:
        """Per-window PRDs in percent, shape ``(n_windows,)``."""
        return np.array([w.prd_percent for w in self.windows])

    @property
    def snrs(self) -> np.ndarray:
        """Per-window SNRs in dB, shape ``(n_windows,)``."""
        return np.array([w.snr_db for w in self.windows])

    @property
    def mean_prd(self) -> float:
        """Mean window PRD (percent)."""
        return float(np.mean(self.prds))

    @property
    def mean_snr_db(self) -> float:
        """Mean window SNR (dB domain, as in Fig. 7)."""
        return mean_snr_over_windows(self.prds)

    @property
    def cs_cr_percent(self) -> float:
        """CS-channel CR realised by the transmitted packets."""
        return float(np.mean([w.budget.cs_cr_percent for w in self.windows]))

    @property
    def net_cr_percent(self) -> float:
        """Net CR counting every transmitted bit."""
        return float(np.mean([w.budget.net_cr_percent for w in self.windows]))

    @property
    def lowres_overhead_percent(self) -> float:
        """Measured low-res overhead D (percent of original bits)."""
        return float(
            np.mean([w.budget.lowres_overhead_percent for w in self.windows])
        )

    def snr_quartiles(self) -> Tuple[float, float, float]:
        """(q25, median, q75) of per-window SNR — the Fig. 8 box stats."""
        q25, med, q75 = np.percentile(self.snrs, [25.0, 50.0, 75.0])
        return float(q25), float(med), float(q75)
