"""Offline codebook training behind a picklable, multiprocess-safe key.

The difference codebook is offline-agreed state shared by node and
receiver (paper Section III-B).  Experiment drivers used to share it via
an ``lru_cache``\\ d function in :mod:`repro.core.pipeline`, which worked
in-process but is hostile to multiprocessing: a cached
:class:`~repro.coding.codebook.DifferenceCodebook` would have to be
pickled into every worker with every task.

Instead, :class:`CodebookKey` captures the *recipe* — a tiny, hashable,
picklable value — and :func:`build_codebook` deterministically rebuilds
(and per-process caches) the codebook from it.  Executor workers ship the
key, not the object; the synthetic database is seeded per record, so any
process that evaluates the same key obtains a bit-identical codebook.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

from repro.coding.codebook import DifferenceCodebook, train_codebook
from repro.sensing.quantizers import requantize_codes
from repro.signals.database import MITBIH_RECORD_NAMES, load_record

__all__ = [
    "DEFAULT_TRAIN_RECORDS",
    "CodebookKey",
    "build_codebook",
    "default_codebook",
]

#: Training corpus mirroring the paper's offline codebook generation.
DEFAULT_TRAIN_RECORDS: Tuple[str, ...] = MITBIH_RECORD_NAMES[:12]


@dataclass(frozen=True)
class CodebookKey:
    """Everything needed to rebuild a default codebook in any process.

    Attributes
    ----------
    lowres_bits:
        Resolution B of the low-res channel the codebook serves.
    acquisition_bits:
        Resolution of the underlying acquisition stream.
    train_records:
        Names of the synthetic-database training records.
    duration_s:
        Training-record length in seconds.
    """

    lowres_bits: int
    acquisition_bits: int = 11
    train_records: Tuple[str, ...] = DEFAULT_TRAIN_RECORDS
    duration_s: float = 30.0

    def __post_init__(self) -> None:
        if not 1 <= self.lowres_bits <= self.acquisition_bits:
            raise ValueError("lowres_bits must be in [1, acquisition_bits]")
        if not self.train_records:
            raise ValueError("training corpus cannot be empty")


@lru_cache(maxsize=32)
def build_codebook(key: CodebookKey) -> DifferenceCodebook:
    """Train (or fetch the per-process cached) codebook for ``key``.

    Deterministic: the synthetic database is seeded per record name, so
    the same key yields a bit-identical codebook in every process — this
    is what lets parallel executor workers rebuild shared offline state
    from a few bytes of task payload.
    """
    streams = []
    for name in key.train_records:
        record = load_record(name, duration_s=key.duration_s)
        streams.append(
            requantize_codes(
                record.adu, key.acquisition_bits, key.lowres_bits
            )
        )
    return train_codebook(streams, key.lowres_bits)


def default_codebook(
    lowres_bits: int,
    acquisition_bits: int = 11,
    *,
    train_records: Tuple[str, ...] = DEFAULT_TRAIN_RECORDS,
    duration_s: float = 30.0,
) -> DifferenceCodebook:
    """Train the offline difference codebook on synthetic-database records.

    Thin compatibility wrapper over :func:`build_codebook`; repeated
    experiment runs in one process share the cached result.
    """
    return build_codebook(
        CodebookKey(
            lowres_bits=lowres_bits,
            acquisition_bits=acquisition_bits,
            train_records=tuple(train_records),
            duration_s=duration_s,
        )
    )
