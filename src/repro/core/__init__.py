"""The paper's contribution: the hybrid CS ECG front-end, end to end."""

from repro.core.adaptive import (
    ActivityEstimator,
    AdaptiveFrontEnd,
    AdaptiveReceiver,
)
from repro.core.channel import LossyLink, RobustReceiver, payload_crc
from repro.core.config import DEFAULT_CONFIG, FrontEndConfig
from repro.core.encode_batch import EncodeEngineSettings, measure_window_stack
from repro.core.frontend import HybridFrontEnd, NormalCsFrontEnd
from repro.core.packets import HEADER_BITS, WindowPacket
from repro.core.pipeline import (
    RecordOutcome,
    WindowOutcome,
    default_codebook,
    run_database,
    run_record,
)
from repro.core.receiver import HybridReceiver, WindowReconstruction
from repro.core.windowing import WindowFramer

__all__ = [
    "ActivityEstimator",
    "AdaptiveFrontEnd",
    "AdaptiveReceiver",
    "DEFAULT_CONFIG",
    "EncodeEngineSettings",
    "FrontEndConfig",
    "HEADER_BITS",
    "HybridFrontEnd",
    "HybridReceiver",
    "LossyLink",
    "NormalCsFrontEnd",
    "RobustReceiver",
    "payload_crc",
    "RecordOutcome",
    "WindowFramer",
    "WindowOutcome",
    "WindowPacket",
    "WindowReconstruction",
    "default_codebook",
    "measure_window_stack",
    "run_database",
    "run_record",
]
