"""Transmit-side batch engine: settings + the batched CS measurement kernel.

PR 4 batched the *receiver* (GEMM solvers + operator cache); this module
is the transmit-side counterpart.  A record's windows are stacked into a
``(windows, n)`` matrix so the CS measurement is one GEMM
(``X @ Φᵀ``), the measurement ADC is one vectorized pass, and the low-res
channel requantizes/differences/Huffman-codes the whole stack at once
(see :mod:`repro.coding.vectorized`).

Exactness contract (``docs/encoding.md``): the batch path is
**bit-identical** to the scalar per-window path.  Elementwise stages
(quantization, requantization, differencing, table lookup) are trivially
identical, but a GEMM does not accumulate in the same order as a
per-window GEMV, so measurement values can differ by a few ULPs — enough
to flip a quantizer cell only when a value sits essentially on a cell
boundary.  :func:`measure_window_stack` therefore detects rows whose
scaled measurements fall within ``boundary_guard`` of a quantizer cell
edge (guard ≫ the ~1e-12 GEMM/GEMV deviation, ≪ any honest cell
clearance) and recomputes exactly those rows with the scalar GEMV before
quantizing, making the batched codes deterministically equal to the
scalar ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sensing.quantizers import UniformQuantizer

__all__ = ["EncodeEngineSettings", "measure_window_stack"]


@dataclass(frozen=True)
class EncodeEngineSettings:
    """Node-side engine controls carried on ``FrontEndConfig.encode``.

    Purely a transmit-efficiency knob — with the exactness contract above
    it never changes what the node transmits, so it is safe to vary per
    deployment (mirror of ``FrontEndConfig.recovery`` on the receiver).

    Attributes
    ----------
    batched:
        Process whole window stacks through the batch engine (default).
        ``False`` forces the scalar per-window reference path everywhere.
    boundary_guard:
        Scaled-measurement distance to a quantizer cell edge below which
        a window is recomputed with the scalar GEMV.  Must sit well above
        the ULP-level GEMM/GEMV deviation; the default leaves ~3 orders
        of magnitude of margin on both sides.
    """

    batched: bool = True
    boundary_guard: float = 1e-9

    def __post_init__(self) -> None:
        if not 0.0 < self.boundary_guard < 0.5:
            raise ValueError("boundary_guard must be in (0, 0.5)")


def measure_window_stack(
    phi: np.ndarray,
    quantizer: UniformQuantizer,
    centered: np.ndarray,
    boundary_guard: float = EncodeEngineSettings.boundary_guard,
) -> np.ndarray:
    """Measurement codes for a stack of centered windows; shape ``(w, m)``.

    One GEMM for the stack, then the boundary guard described in the
    module docstring: rows with any scaled measurement within
    ``boundary_guard`` of a quantizer cell edge are recomputed with the
    per-window GEMV so every code equals the scalar path's bit for bit.
    ``centered`` must be C-contiguous float64 — each guarded row is then
    the exact array the scalar path sees.
    """
    centered = np.ascontiguousarray(centered, dtype=float)
    if centered.ndim != 2:
        raise ValueError("expected a (windows, n) stack of centered windows")
    y = centered @ phi.T
    scaled = (y + quantizer.full_scale) / quantizer.step
    near_edge = np.abs(scaled - np.rint(scaled)) < boundary_guard
    for row in np.flatnonzero(near_edge.any(axis=1)):
        y[row] = phi @ centered[row]
    return quantizer.quantize(y)
