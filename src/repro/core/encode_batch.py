"""Transmit-side batch engine: settings + the batched CS measurement kernel.

PR 4 batched the *receiver* (GEMM solvers + operator cache); this module
is the transmit-side counterpart.  A record's windows are stacked into a
``(windows, n)`` matrix so the CS measurement is one GEMM
(``X @ Φᵀ``), the measurement ADC is one vectorized pass, and the low-res
channel requantizes/differences/Huffman-codes the whole stack at once
(see :mod:`repro.coding.vectorized`).

Exactness contract (``docs/encoding.md``): the batch path is
**bit-identical** to the scalar per-window path.  Elementwise stages
(quantization, requantization, differencing, table lookup) are trivially
identical, but a GEMM does not accumulate in the same order as a
per-window GEMV, so measurement values can differ by a few ULPs — enough
to flip a quantizer cell only when a value sits essentially on a cell
boundary.  :func:`measure_window_stack` therefore detects rows whose
scaled measurements fall within ``boundary_guard`` of a quantizer cell
edge (guard ≫ the ~1e-12 GEMM/GEMV deviation, ≪ any honest cell
clearance) and recomputes exactly those rows with the scalar GEMV before
quantizing, making the batched codes deterministically equal to the
scalar ones.

**Backend seam:** the GEMM consumes :mod:`repro.backend` instead of
numpy directly.  On a fast path (float32 or a non-NumPy backend) only
the bulk GEMM runs in the selected backend/precision; the quantizer
scaling and the boundary-guard detection *always* run in float64 on the
host, and every near-edge row is recomputed with the exact float64
GEMV.  So a fast-path code can differ from the exact path only where
GEMM precision honestly moves a measurement across a quantizer cell —
never from guard logic running at reduced precision — and the encode
bench reports exactly how often that happens (byte-identity fraction
and max code delta per cell).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.backend import BackendSettings, HOST, ndarray, resolve
from repro.perf import lease_workspace, profiled
from repro.sensing.quantizers import UniformQuantizer

__backend_seam__ = True

__all__ = ["EncodeEngineSettings", "measure_window_stack"]


@dataclass(frozen=True)
class EncodeEngineSettings:
    """Node-side engine controls carried on ``FrontEndConfig.encode``.

    Purely a transmit-efficiency knob — with the exactness contract above
    it never changes what the node transmits, so it is safe to vary per
    deployment (mirror of ``FrontEndConfig.recovery`` on the receiver).

    Attributes
    ----------
    batched:
        Process whole window stacks through the batch engine (default).
        ``False`` forces the scalar per-window reference path everywhere.
    boundary_guard:
        Scaled-measurement distance to a quantizer cell edge below which
        a window is recomputed with the scalar GEMV.  Must sit well above
        the ULP-level GEMM/GEMV deviation; the default leaves ~3 orders
        of magnitude of margin on both sides.
    """

    batched: bool = True
    boundary_guard: float = 1e-9

    def __post_init__(self) -> None:
        if not 0.0 < self.boundary_guard < 0.5:
            raise ValueError("boundary_guard must be in (0, 0.5)")


@profiled("core.encode_batch")
def measure_window_stack(
    phi: ndarray,
    quantizer: UniformQuantizer,
    centered: ndarray,
    boundary_guard: float = EncodeEngineSettings.boundary_guard,
    *,
    settings: Optional[BackendSettings] = None,
) -> ndarray:
    """Measurement codes for a stack of centered windows; shape ``(w, m)``.

    One GEMM for the stack, then the boundary guard described in the
    module docstring: rows with any scaled measurement within
    ``boundary_guard`` of a quantizer cell edge are recomputed with the
    per-window float64 GEMV.  ``centered`` must be C-contiguous float64 —
    each guarded row is then the exact array the scalar path sees.  With
    default/exact ``settings`` every code equals the scalar path's bit
    for bit; on a fast path only the bulk GEMM runs in the selected
    backend/precision while guard detection and recomputation stay
    float64 (host), as does the quantizer.
    """
    host = HOST.xp
    centered = host.ascontiguousarray(centered, dtype=host.float64)
    if centered.ndim != 2:
        raise ValueError("expected a (windows, n) stack of centered windows")
    backend, _, dtype, settings = resolve(settings)
    w = centered.shape[0]
    m = phi.shape[0]
    # The guard pipeline always runs in host float64, so the workspace
    # lease is pinned to the exact settings even on a fast-path GEMM.
    with lease_workspace(None, f"encode:{m}x{phi.shape[1]}") as ws:
        y = ws.buf("y", (w, m))
        if settings.is_exact:
            HOST.matmul(centered, phi.T, out=y)
        else:
            phi_dev = backend.asarray(phi, dtype=dtype)
            centered_dev = backend.asarray(centered, dtype=dtype)
            y[...] = backend.to_numpy(centered_dev @ phi_dev.T)
        scaled = ws.buf("scaled", (w, m))
        host.add(y, quantizer.full_scale, out=scaled)
        scaled /= quantizer.step
        edge = ws.buf("edge", (w, m))
        host.rint(scaled, out=edge)
        host.subtract(scaled, edge, out=edge)
        host.abs(edge, out=edge)
        near_edge = edge < boundary_guard
        for row in host.flatnonzero(near_edge.any(axis=1)):
            y[row] = phi @ centered[row]
        # quantize() returns a fresh array, so nothing leased escapes.
        return quantizer.quantize(y)
