"""Adaptive measurement allocation driven by the low-resolution channel.

A natural extension of the paper's architecture (in the spirit of its
"future work" on smarter acquisition): the node *already* digitizes the
low-resolution stream, so it can estimate each window's complexity for
free — quiet baseline windows need far fewer CS measurements than windows
full of QRS energy or motion artifact.  With an RMPI bank, "fewer
measurements" literally means powering down channels for that window, so
saved measurements are saved amplifier energy, not just radio bits.

Components:

* :class:`ActivityEstimator` — a complexity score from the low-res codes
  (fraction of non-zero differences, the same statistic the entropy coder
  exploits);
* :class:`AdaptiveFrontEnd` — picks ``m`` per window from a budget range
  by the activity score; the chipping matrix is the *prefix* of a shared
  ``m_max``-channel bank, so the receiver can rebuild Φ for any ``m``
  from the shared seed;
* :class:`AdaptiveReceiver` — per-``m`` receiver cache keyed off the
  packet header (``m`` is already a header field).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.coding.codebook import DifferenceCodebook
from repro.core.config import FrontEndConfig
from repro.core.packets import WindowPacket
from repro.core.receiver import HybridReceiver, WindowReconstruction
from repro.sensing.quantizers import requantize_codes

__all__ = ["ActivityEstimator", "AdaptiveFrontEnd", "AdaptiveReceiver"]


@dataclass(frozen=True)
class ActivityEstimator:
    """Window-complexity score from the low-resolution codes.

    The score is the fraction of consecutive low-res samples that differ —
    0 for a flat window, approaching 1 when every sample moves by at least
    one low-res step.  Cheap (a comparison per sample) and computed from
    data the node must produce anyway.
    """

    def score(self, lowres_codes: np.ndarray) -> float:
        """Activity in [0, 1] for one window of low-res codes."""
        arr = np.asarray(lowres_codes)
        if arr.ndim != 1 or arr.size < 2:
            raise ValueError("need a 1-D window of at least 2 samples")
        diffs = np.diff(arr)
        return float(np.count_nonzero(diffs) / diffs.size)


class AdaptiveFrontEnd:
    """Hybrid front-end with per-window measurement allocation.

    Parameters
    ----------
    config:
        Shared configuration; ``config.n_measurements`` is interpreted as
        the *maximum* channel count ``m_max`` (the physical bank size).
    codebook:
        Offline difference codebook (as for the fixed front-end).
    m_min:
        Floor on the per-window measurement count.
    activity_knee:
        Activity score mapped to the top of the measurement range; windows
        scoring at or above it get all ``m_max`` channels.
    """

    def __init__(
        self,
        config: FrontEndConfig,
        codebook: DifferenceCodebook,
        *,
        m_min: int = 16,
        activity_knee: float = 0.6,
        estimator: Optional[ActivityEstimator] = None,
    ) -> None:
        if not 1 <= m_min <= config.n_measurements:
            raise ValueError("m_min must be in [1, m_max]")
        if not 0.0 < activity_knee <= 1.0:
            raise ValueError("activity_knee must be in (0, 1]")
        if codebook.resolution_bits != config.lowres_bits:
            raise ValueError("codebook resolution does not match the config")
        self.config = config
        self.codebook = codebook
        self.m_min = m_min
        self.m_max = config.n_measurements
        self.activity_knee = activity_knee
        self.estimator = estimator or ActivityEstimator()
        self.center = 1 << (config.acquisition_bits - 1)
        # Per-m CS paths, constructed exactly as a fixed front-end (and
        # therefore the receiver) would from the shared seed.  Physically
        # the sign pattern of the m-channel Φ is the row prefix of the
        # m_max bank (same PRNG stream), i.e. "power down the rest".
        from repro.core.frontend import _CsPath

        self._paths: Dict[int, _CsPath] = {}

    def _path_for(self, m: int):
        from repro.core.frontend import _CsPath

        if m not in self._paths:
            self._paths[m] = _CsPath(self.config.with_measurements(m))
        return self._paths[m]

    def measurements_for_activity(self, activity: float) -> int:
        """Map an activity score to a channel count (linear up to the knee)."""
        if not 0.0 <= activity <= 1.0:
            raise ValueError("activity must be in [0, 1]")
        fraction = min(activity / self.activity_knee, 1.0)
        m = self.m_min + fraction * (self.m_max - self.m_min)
        return int(round(m))

    def process_window(self, codes: np.ndarray, window_index: int = 0) -> WindowPacket:
        """Acquire one window with an activity-matched channel count."""
        arr = np.asarray(codes)
        if arr.ndim != 1 or arr.size != self.config.window_len:
            raise ValueError(
                f"expected a window of {self.config.window_len} samples"
            )
        lowres = requantize_codes(
            arr, self.config.acquisition_bits, self.config.lowres_bits
        )
        activity = self.estimator.score(lowres)
        m = self.measurements_for_activity(activity)
        y_codes = self._path_for(m).measure(arr)
        payload, bit_length = self.codebook.encode_window(lowres)
        return WindowPacket(
            window_index=window_index,
            n=self.config.window_len,
            measurement_codes=y_codes,
            measurement_bits=self.config.measurement_bits,
            lowres_payload=payload,
            lowres_bit_length=bit_length,
        )

    def process_record(self, record, max_windows: Optional[int] = None) -> List[WindowPacket]:
        """Process a record window by window."""
        packets: List[WindowPacket] = []
        for idx, window in enumerate(record.windows(self.config.window_len)):
            if max_windows is not None and idx >= max_windows:
                break
            packets.append(self.process_window(window, idx))
        return packets


class AdaptiveReceiver:
    """Receiver for variable-``m`` packets.

    Reads ``m`` from each packet header and lazily builds (and caches) a
    fixed-``m`` :class:`HybridReceiver` whose Φ is the same row prefix of
    the shared bank the node used.
    """

    def __init__(self, config: FrontEndConfig, codebook: DifferenceCodebook) -> None:
        self.config = config
        self.codebook = codebook
        self._receivers: Dict[int, HybridReceiver] = {}

    def _receiver_for(self, m: int) -> HybridReceiver:
        if m not in self._receivers:
            if not 1 <= m <= self.config.n_measurements:
                raise ValueError(
                    f"packet uses m={m}, outside the bank size "
                    f"{self.config.n_measurements}"
                )
            self._receivers[m] = HybridReceiver(
                self.config.with_measurements(m), self.codebook
            )
        return self._receivers[m]

    def reconstruct(self, packet: WindowPacket) -> WindowReconstruction:
        """Reconstruct one variable-m packet."""
        return self._receiver_for(packet.m).reconstruct(packet)
