"""Fixed-size window framing of an incoming sample stream.

The front-end processes the signal in fixed windows (paper Fig. 1: both
paths transmit per "fixed time window").  :class:`WindowFramer` is a tiny
streaming re-blocker: push arbitrary-length chunks of samples in, get
complete windows out — mirroring how an on-node DMA/interrupt pipeline
hands data to the compression stage.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

__all__ = ["WindowFramer"]


class WindowFramer:
    """Re-blocks a sample stream into fixed-length windows.

    Parameters
    ----------
    window_len:
        Samples per emitted window.

    Examples
    --------
    >>> framer = WindowFramer(4)
    >>> [w.tolist() for w in framer.push(np.arange(6))]
    [[0, 1, 2, 3]]
    >>> [w.tolist() for w in framer.push(np.arange(6, 9))]
    [[4, 5, 6, 7]]
    >>> framer.pending
    1
    """

    def __init__(self, window_len: int) -> None:
        if window_len <= 0:
            raise ValueError("window_len must be positive")
        self.window_len = window_len
        self._buffer: List[np.ndarray] = []
        self._buffered = 0
        self._emitted = 0

    @property
    def pending(self) -> int:
        """Samples buffered but not yet emitted."""
        return self._buffered

    @property
    def windows_emitted(self) -> int:
        """Complete windows produced so far."""
        return self._emitted

    def push(self, samples: np.ndarray) -> Iterator[np.ndarray]:
        """Feed samples; yield every complete window that becomes available.

        Samples are yielded in arrival order with no gaps or overlaps; a
        trailing partial window stays buffered for the next push.
        """
        arr = np.asarray(samples)
        if arr.ndim != 1:
            raise ValueError("samples must be 1-D")
        if arr.size:
            self._buffer.append(arr)
            self._buffered += arr.size
        while self._buffered >= self.window_len:
            chunk = np.concatenate(self._buffer) if len(self._buffer) > 1 else self._buffer[0]
            window = chunk[: self.window_len]
            rest = chunk[self.window_len :]
            self._buffer = [rest] if rest.size else []
            self._buffered = rest.size
            self._emitted += 1
            yield window

    def flush(self) -> np.ndarray:
        """Return (and clear) the buffered partial window; 1-D, possibly empty."""
        if not self._buffer:
            return np.empty(0, dtype=int)
        chunk = np.concatenate(self._buffer) if len(self._buffer) > 1 else self._buffer[0]
        self._buffer = []
        self._buffered = 0
        return chunk
