"""Transmit frame format for one processing window (paper Fig. 1: both
paths' data are "transmitted at a fixed time window").

The node serializes, per window:

* a fixed header (window index, window length, measurement count, payload
  bit length),
* the CS path: ``m`` measurement codes at ``measurement_bits`` each,
* the low-res path: the Huffman-coded difference payload.

Everything the receiver additionally needs (chipping seed, codebook,
quantizer scaling) is part of the shared :class:`~repro.core.config.
FrontEndConfig`, exactly like the offline-agreed state of a real link.
Serialization is bit-exact and round-trips through :meth:`WindowPacket.
to_bytes` / :meth:`WindowPacket.from_bytes`; all compression ratios in the
experiments are measured on these frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.coding.bitstream import BitReader, BitWriter
from repro.metrics.compression import CompressionBudget, ORIGINAL_RESOLUTION_BITS

__all__ = ["WindowPacket", "HEADER_BITS"]

#: Fixed per-window header: index (32) + n (16) + m (16) + payload bits (32).
HEADER_BITS = 32 + 16 + 16 + 32


@dataclass(frozen=True)
class WindowPacket:
    """One window's transmitted data.

    Attributes
    ----------
    window_index:
        Sequence number of the window in the stream.
    n:
        Window length in Nyquist samples.
    measurement_codes:
        The ``m`` quantized CS measurements as unsigned ADC codes.
    measurement_bits:
        Bits per measurement code.
    lowres_payload:
        Huffman-coded low-resolution difference stream (byte-padded).
    lowres_bit_length:
        Exact number of meaningful bits in ``lowres_payload``.
    """

    window_index: int
    n: int
    measurement_codes: np.ndarray
    measurement_bits: int
    lowres_payload: bytes
    lowres_bit_length: int

    def __post_init__(self) -> None:
        codes = np.asarray(self.measurement_codes)
        if codes.ndim != 1:
            raise ValueError("measurement codes must be a vector")
        if not np.issubdtype(codes.dtype, np.integer):
            raise TypeError("measurement codes must be integers")
        if self.measurement_bits <= 0:
            raise ValueError("measurement_bits must be positive")
        if codes.size and (
            codes.min() < 0 or codes.max() >= (1 << self.measurement_bits)
        ):
            raise ValueError("measurement codes out of range")
        if self.window_index < 0 or self.n <= 0:
            raise ValueError("invalid header fields")
        if self.lowres_bit_length > len(self.lowres_payload) * 8:
            raise ValueError("payload bit length exceeds the payload buffer")
        object.__setattr__(self, "measurement_codes", codes.astype(np.int64))

    @property
    def m(self) -> int:
        """Number of CS measurements in the frame."""
        return int(self.measurement_codes.size)

    @property
    def cs_bits(self) -> int:
        """Bits spent on the CS path."""
        return self.m * self.measurement_bits

    @property
    def total_bits(self) -> int:
        """Every transmitted bit: header + CS codes + low-res payload."""
        return HEADER_BITS + self.cs_bits + self.lowres_bit_length

    def budget(
        self, original_bits_per_sample: int = ORIGINAL_RESOLUTION_BITS
    ) -> CompressionBudget:
        """Full bit accounting of this window against the original signal."""
        return CompressionBudget(
            n_samples=self.n,
            original_bits=self.n * original_bits_per_sample,
            cs_bits=self.cs_bits,
            lowres_bits=self.lowres_bit_length,
            header_bits=HEADER_BITS,
        )

    def to_bytes(self) -> bytes:
        """Serialize to the on-air byte representation."""
        writer = BitWriter()
        writer.write_uint(self.window_index, 32)
        writer.write_uint(self.n, 16)
        writer.write_uint(self.m, 16)
        writer.write_uint(self.lowres_bit_length, 32)
        for code in self.measurement_codes:
            writer.write_uint(int(code), self.measurement_bits)
        reader = BitReader(self.lowres_payload, self.lowres_bit_length)
        for _ in range(self.lowres_bit_length):
            writer.write_bit(reader.read_bit())
        return writer.getvalue()

    @staticmethod
    def from_bytes(data: bytes, measurement_bits: int) -> "WindowPacket":
        """Parse a frame produced by :meth:`to_bytes`.

        ``measurement_bits`` comes from the shared config (it is offline
        state, not per-frame signalling).
        """
        reader = BitReader(data)
        window_index = reader.read_uint(32)
        n = reader.read_uint(16)
        m = reader.read_uint(16)
        lowres_bit_length = reader.read_uint(32)
        codes = np.array(
            [reader.read_uint(measurement_bits) for _ in range(m)], dtype=np.int64
        )
        payload_writer = BitWriter()
        for _ in range(lowres_bit_length):
            payload_writer.write_bit(reader.read_bit())
        return WindowPacket(
            window_index=window_index,
            n=n,
            measurement_codes=codes,
            measurement_bits=measurement_bits,
            lowres_payload=payload_writer.getvalue(),
            lowres_bit_length=lowres_bit_length,
        )


def split_stream(
    data: bytes, measurement_bits: int, n_packets: int
) -> Tuple[WindowPacket, ...]:
    """Parse ``n_packets`` back-to-back byte-aligned frames.

    Each frame's byte length is recomputed from its header, mirroring a
    receiver draining a radio FIFO.
    """
    packets = []
    offset = 0
    for _ in range(n_packets):
        head = BitReader(data[offset : offset + (HEADER_BITS // 8)])
        head.read_uint(32)
        head.read_uint(16)
        m = head.read_uint(16)
        lowres_bits = head.read_uint(32)
        frame_bits = HEADER_BITS + m * measurement_bits + lowres_bits
        frame_bytes = (frame_bits + 7) // 8
        packets.append(
            WindowPacket.from_bytes(
                data[offset : offset + frame_bytes], measurement_bits
            )
        )
        offset += frame_bytes
    return tuple(packets)
