"""End-to-end pipeline: record → packets → reconstruction → metrics.

Convenience layer gluing together the node front-ends, the receiver and
the metrics, with per-record aggregation matching how the paper reports
results (averages over windows and records, Fig. 7; per-record box stats,
Fig. 8).  The experiment drivers and the examples are built on this.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.coding.codebook import DifferenceCodebook, train_codebook
from repro.core.config import FrontEndConfig
from repro.core.frontend import HybridFrontEnd, NormalCsFrontEnd
from repro.core.receiver import HybridReceiver
from repro.metrics.compression import CompressionBudget
from repro.metrics.quality import mean_snr_over_windows, prd as prd_metric
from repro.sensing.quantizers import requantize_codes
from repro.signals.database import MITBIH_RECORD_NAMES, load_record
from repro.signals.records import Record

__all__ = [
    "WindowOutcome",
    "RecordOutcome",
    "default_codebook",
    "run_record",
    "run_database",
]


@dataclass(frozen=True)
class WindowOutcome:
    """Quality and bit accounting for one reconstructed window."""

    window_index: int
    prd_percent: float
    snr_db: float
    budget: CompressionBudget
    solver_iterations: int
    solver_converged: bool


@dataclass(frozen=True)
class RecordOutcome:
    """Aggregated outcome of running one record through one method."""

    record_name: str
    method: str
    windows: Tuple[WindowOutcome, ...]

    def __post_init__(self) -> None:
        if not self.windows:
            raise ValueError("record outcome needs at least one window")

    @property
    def prds(self) -> np.ndarray:
        """Per-window PRDs in percent, shape ``(n_windows,)``."""
        return np.array([w.prd_percent for w in self.windows])

    @property
    def snrs(self) -> np.ndarray:
        """Per-window SNRs in dB, shape ``(n_windows,)``."""
        return np.array([w.snr_db for w in self.windows])

    @property
    def mean_prd(self) -> float:
        """Mean window PRD (percent)."""
        return float(np.mean(self.prds))

    @property
    def mean_snr_db(self) -> float:
        """Mean window SNR (dB domain, as in Fig. 7)."""
        return mean_snr_over_windows(self.prds)

    @property
    def cs_cr_percent(self) -> float:
        """CS-channel CR realised by the transmitted packets."""
        return float(np.mean([w.budget.cs_cr_percent for w in self.windows]))

    @property
    def net_cr_percent(self) -> float:
        """Net CR counting every transmitted bit."""
        return float(np.mean([w.budget.net_cr_percent for w in self.windows]))

    @property
    def lowres_overhead_percent(self) -> float:
        """Measured low-res overhead D (percent of original bits)."""
        return float(
            np.mean([w.budget.lowres_overhead_percent for w in self.windows])
        )

    def snr_quartiles(self) -> Tuple[float, float, float]:
        """(q25, median, q75) of per-window SNR — the Fig. 8 box stats."""
        q25, med, q75 = np.percentile(self.snrs, [25.0, 50.0, 75.0])
        return float(q25), float(med), float(q75)


@lru_cache(maxsize=32)
def default_codebook(
    lowres_bits: int,
    acquisition_bits: int = 11,
    *,
    train_records: Tuple[str, ...] = MITBIH_RECORD_NAMES[:12],
    duration_s: float = 30.0,
) -> DifferenceCodebook:
    """Train the offline difference codebook on synthetic-database records.

    Mirrors the paper's offline codebook generation: a training corpus of
    low-resolution streams, one Huffman codebook per resolution, stored on
    the node.  Cached so repeated experiment runs share it.
    """
    streams = []
    for name in train_records:
        record = load_record(name, duration_s=duration_s)
        streams.append(
            requantize_codes(record.adu, acquisition_bits, lowres_bits)
        )
    return train_codebook(streams, lowres_bits)


def _reference_centered(record: Record, window: np.ndarray, center: int) -> np.ndarray:
    return window.astype(float) - center


def run_record(
    record: Record,
    config: FrontEndConfig,
    *,
    method: str = "hybrid",
    codebook: Optional[DifferenceCodebook] = None,
    max_windows: Optional[int] = None,
) -> RecordOutcome:
    """Run one record end-to-end through the chosen front-end.

    Parameters
    ----------
    record:
        Input record; its resolution must match the config.
    config:
        Shared link configuration.
    method:
        ``"hybrid"`` (CS + low-res bounds) or ``"normal"`` (CS only).
    codebook:
        Difference codebook; trained on the default corpus when omitted
        (hybrid only).
    max_windows:
        Cap on processed windows (None = all full windows).

    Returns
    -------
    RecordOutcome
        Per-window PRD/SNR (computed on baseline-centered signals, so the
        constant ADC offset does not inflate signal energy) plus the full
        bit accounting of the transmitted frames.
    """
    if method not in ("hybrid", "normal"):
        raise ValueError(f"unknown method {method!r}")
    center = 1 << (config.acquisition_bits - 1)

    if method == "hybrid":
        book = codebook or default_codebook(
            config.lowres_bits, config.acquisition_bits
        )
        frontend = HybridFrontEnd(config, book)
        receiver = HybridReceiver(config, book)
    else:
        book = None
        frontend = NormalCsFrontEnd(config)
        receiver = HybridReceiver(config)

    outcomes: List[WindowOutcome] = []
    for idx, window in enumerate(record.windows(config.window_len)):
        if max_windows is not None and idx >= max_windows:
            break
        packet = frontend.process_window(window, idx)
        recon = receiver.reconstruct(packet)
        reference = _reference_centered(record, window, center)
        p = prd_metric(reference, recon.x_centered(center))
        snr = float("inf") if p == 0 else -20.0 * np.log10(0.01 * p)
        outcomes.append(
            WindowOutcome(
                window_index=idx,
                prd_percent=p,
                snr_db=min(snr, 120.0),
                budget=packet.budget(),
                solver_iterations=recon.recovery.iterations,
                solver_converged=recon.recovery.converged,
            )
        )
    if not outcomes:
        raise ValueError(
            f"record {record.name} is shorter than one {config.window_len}-sample window"
        )
    return RecordOutcome(record_name=record.name, method=method, windows=tuple(outcomes))


def run_database(
    records: Sequence[Record],
    config: FrontEndConfig,
    *,
    method: str = "hybrid",
    codebook: Optional[DifferenceCodebook] = None,
    max_windows: Optional[int] = None,
) -> List[RecordOutcome]:
    """Run several records; returns one :class:`RecordOutcome` each."""
    return [
        run_record(
            rec,
            config,
            method=method,
            codebook=codebook,
            max_windows=max_windows,
        )
        for rec in records
    ]
