"""End-to-end pipeline: record → packets → reconstruction → metrics.

Compatibility surface over the staged execution engine
(:mod:`repro.runtime`).  :func:`run_record` and :func:`run_database`
keep their historical signatures but are now thin wrappers that build
:class:`~repro.runtime.engine.RecordJob` units and schedule them through
an :class:`~repro.runtime.engine.ExecutionEngine`; pass ``executor=``
(e.g. :class:`repro.runtime.ParallelExecutor`) to fan window solves out
over processes.  The default :class:`~repro.runtime.SerialExecutor` is
bit-identical to the old in-process loop.

The outcome dataclasses live in :mod:`repro.core.outcomes` and the
codebook training in :mod:`repro.core.codebooks`; both are re-exported
here for existing importers.

Receiver-side operator state (the composed ΦΨ, its Gram matrix and the
solver factorizations) is shared across every window of a run — and
across runs at the same operating point — through the process-wide
:data:`repro.recovery.opcache.PROBLEM_CACHE`, controlled by
``config.recovery`` (see :doc:`docs/recovery`).  This is transparent to
callers: caching is bit-neutral, so ``run_record`` output is unchanged
whether the flag is on or off.
"""

from __future__ import annotations

# reprolint: disable-file=RL100 -- compat facade: run_record/run_database
# predate the engine and keep their public home here while callers
# migrate; the layering arrow core→runtime is deliberate in this one
# module (see docs/architecture.md).

from typing import List, Optional, Sequence

from repro.coding.codebook import DifferenceCodebook
from repro.core.codebooks import default_codebook
from repro.core.config import FrontEndConfig
from repro.core.outcomes import RecordOutcome, WindowOutcome
from repro.runtime.engine import ExecutionEngine, RecordJob
from repro.runtime.executors import Executor
from repro.runtime.task import CodebookSpec
from repro.signals.records import Record

__all__ = [
    "WindowOutcome",
    "RecordOutcome",
    "default_codebook",
    "run_record",
    "run_database",
]


def _job(
    record: Record,
    config: FrontEndConfig,
    method: str,
    codebook: Optional[DifferenceCodebook],
    max_windows: Optional[int],
) -> RecordJob:
    spec = CodebookSpec.from_object(codebook) if codebook is not None else None
    return RecordJob(
        record=record,
        config=config,
        method=method,
        codebook=spec,
        max_windows=max_windows,
    )


def run_record(
    record: Record,
    config: FrontEndConfig,
    *,
    method: str = "hybrid",
    codebook: Optional[DifferenceCodebook] = None,
    max_windows: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> RecordOutcome:
    """Run one record end-to-end through the chosen front-end.

    Parameters
    ----------
    record:
        Input record; its resolution must match the config.
    config:
        Shared link configuration.
    method:
        ``"hybrid"`` (CS + low-res bounds) or ``"normal"`` (CS only).
    codebook:
        Difference codebook; trained on the default corpus when omitted
        (hybrid only).
    max_windows:
        Cap on processed windows (None = all full windows).
    executor:
        Task executor; defaults to the serial engine.  A parallel
        executor spreads the window solves over processes and returns
        bit-identical results.

    Returns
    -------
    RecordOutcome
        Per-window PRD/SNR (computed on baseline-centered signals, so the
        constant ADC offset does not inflate signal energy) plus the full
        bit accounting of the transmitted frames.
    """
    engine = ExecutionEngine(executor=executor)
    return engine.run_job(_job(record, config, method, codebook, max_windows))


def run_database(
    records: Sequence[Record],
    config: FrontEndConfig,
    *,
    method: str = "hybrid",
    codebook: Optional[DifferenceCodebook] = None,
    max_windows: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> List[RecordOutcome]:
    """Run several records; returns one :class:`RecordOutcome` each.

    All records are scheduled as one task batch, so a parallel executor
    overlaps window solves *across* records, not just within one.
    """
    engine = ExecutionEngine(executor=executor)
    return engine.run_jobs(
        [_job(rec, config, method, codebook, max_windows) for rec in records]
    )
