"""Lossy-link simulation: bit errors and packet erasures.

A WBSN radio link drops and corrupts frames; a deployable front-end must
degrade gracefully.  The two packet fields fail very differently:

* a corrupted **CS measurement** adds bounded noise to ``y`` — convex
  recovery absorbs it through σ (and the hybrid's box caps the damage);
* a corrupted **Huffman payload** desynchronizes the variable-length
  decode for the rest of the window.

:class:`LossyLink` injects both kinds of impairment; :class:`RobustReceiver`
wraps :class:`~repro.core.receiver.HybridReceiver` with the standard
mitigations — payload CRC to detect low-res corruption and fall back to
normal-CS recovery for that window, and per-window independence so packet
erasures cost exactly one window (concealed by zero-order hold).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.coding.bitstream import BitReader, BitWriter
from repro.core.config import FrontEndConfig
from repro.core.packets import WindowPacket
from repro.core.receiver import HybridReceiver, WindowReconstruction

__all__ = ["LossyLink", "RobustReceiver", "payload_crc", "decode_robust"]


def payload_crc(packet: WindowPacket) -> int:
    """CRC-32 of a packet's semantic content (codes + low-res payload)."""
    h = zlib.crc32(packet.measurement_codes.astype("<i8").tobytes())
    h = zlib.crc32(packet.lowres_payload, h)
    h = zlib.crc32(packet.lowres_bit_length.to_bytes(4, "little"), h)
    return h & 0xFFFFFFFF


def decode_robust(
    packet: WindowPacket,
    expected_crc: Optional[int],
    receiver: HybridReceiver,
    fallback_receiver: Optional[HybridReceiver] = None,
    alpha0: Optional[np.ndarray] = None,
) -> Tuple[WindowReconstruction, str]:
    """Stateless CRC-checked decode with CS-only fallback for one packet.

    The per-packet half of :class:`RobustReceiver`'s strategy — no
    concealment state, so it is safe to fan out across processes (the
    streaming gateway's recovery workers call it directly):

    * low-res payload present and CRC matching (or unchecked) → hybrid
      Eq. 1 solve;
    * CRC mismatch or payload desync during decode → strip the payload
      and recover from the CS measurements alone.

    Returns ``(reconstruction, mode)`` with mode ``"hybrid"`` or
    ``"cs-fallback"``.  ``fallback_receiver`` defaults to ``receiver`` —
    a stripped packet degrades to the method's measurements-only
    sibling (plain BPDN for Eq. 1 links, plain BSBL for
    ``"bsbl-dequant"`` links; see
    :meth:`repro.core.receiver.HybridReceiver.reconstruct`).  ``alpha0``
    optionally warm-starts the solve (streaming sessions pass the
    previous window's coefficients).
    """
    if fallback_receiver is None:
        fallback_receiver = receiver
    use_hybrid = packet.lowres_bit_length > 0
    if use_hybrid and expected_crc is not None:
        use_hybrid = payload_crc(packet) == expected_crc

    if use_hybrid:
        try:
            return receiver.reconstruct(packet, alpha0=alpha0), "hybrid"
        except (ValueError, EOFError):  # reprolint: disable=RL006 -- deliberate CS-only fallback on payload desync, mode is reported to the caller
            pass  # desynchronized payload: fall back below

    stripped = WindowPacket(
        window_index=packet.window_index,
        n=packet.n,
        measurement_codes=packet.measurement_codes,
        measurement_bits=packet.measurement_bits,
        lowres_payload=b"",
        lowres_bit_length=0,
    )
    return fallback_receiver.reconstruct(stripped, alpha0=alpha0), "cs-fallback"


@dataclass
class LossyLink:
    """A bit-error / packet-erasure channel for :class:`WindowPacket`.

    Attributes
    ----------
    bit_error_rate:
        Probability of flipping each payload bit (applied independently
        to measurement codes and the low-res payload).
    packet_erasure_rate:
        Probability a whole packet never arrives.
    seed:
        Randomness seed (deterministic channel realizations).
    """

    bit_error_rate: float = 0.0
    packet_erasure_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.bit_error_rate < 1.0:
            raise ValueError("bit_error_rate must be in [0, 1)")
        if not 0.0 <= self.packet_erasure_rate < 1.0:
            raise ValueError("packet_erasure_rate must be in [0, 1)")
        self._rng = np.random.default_rng(self.seed)

    def _flip_bits(self, data: bytes, n_bits: int) -> bytes:
        if not data or self.bit_error_rate == 0.0:
            return data
        arr = np.frombuffer(data, dtype=np.uint8).copy()
        total_bits = min(n_bits, arr.size * 8)
        flips = self._rng.uniform(size=total_bits) < self.bit_error_rate
        for pos in np.nonzero(flips)[0]:
            arr[pos // 8] ^= 1 << (7 - pos % 8)
        return arr.tobytes()

    def transmit(self, packet: WindowPacket) -> Optional[WindowPacket]:
        """Push one packet through the channel.

        Returns ``None`` for an erasure, otherwise a (possibly corrupted)
        packet.  The header is assumed protected (real links CRC and
        retransmit the few header bytes; it is the payload that is big).
        """
        if self._rng.uniform() < self.packet_erasure_rate:
            return None
        if self.bit_error_rate == 0.0:
            return packet

        # Corrupt measurement codes bit-by-bit on their serialized form.
        writer = BitWriter()
        for code in packet.measurement_codes:
            writer.write_uint(int(code), packet.measurement_bits)
        code_bytes = self._flip_bits(writer.getvalue(), writer.bit_length)
        reader = BitReader(code_bytes, writer.bit_length)
        codes = np.array(
            [reader.read_uint(packet.measurement_bits) for _ in range(packet.m)],
            dtype=np.int64,
        )
        payload = self._flip_bits(packet.lowres_payload, packet.lowres_bit_length)
        return WindowPacket(
            window_index=packet.window_index,
            n=packet.n,
            measurement_codes=codes,
            measurement_bits=packet.measurement_bits,
            lowres_payload=payload,
            lowres_bit_length=packet.lowres_bit_length,
        )


class RobustReceiver:
    """A :class:`HybridReceiver` hardened for lossy links.

    Strategy per window:

    * **erasure** → conceal with the previous window's reconstruction
      (zero-order hold), or the configured baseline for the first window;
    * **low-res payload CRC mismatch** → decode the window from the CS
      measurements alone (normal-CS fallback: degraded, not corrupt);
    * **payload decode failure** (desync despite matching CRC, or absent
      CRC) → same CS-only fallback.
    """

    def __init__(self, config: FrontEndConfig, codebook) -> None:
        self.config = config
        self._receiver = HybridReceiver(config, codebook)
        self._normal_receiver = HybridReceiver(config)
        self._last_codes: Optional[np.ndarray] = None

    def _conceal(self, window_index: int) -> WindowReconstruction:
        center = 1 << (self.config.acquisition_bits - 1)
        if self._last_codes is not None:
            codes = self._last_codes.copy()
        else:
            codes = np.full(self.config.window_len, float(center))
        from repro.recovery.result import RecoveryResult

        dummy = RecoveryResult(
            alpha=np.zeros(self.config.window_len),
            x=codes - center,
            iterations=0,
            converged=False,
            residual_norm=float("nan"),
            objective=float("nan"),
            solver="concealment",
        )
        return WindowReconstruction(
            window_index=window_index,
            x_codes=codes,
            recovery=dummy,
            lowres_codes=None,
        )

    def receive(
        self,
        packet: Optional[WindowPacket],
        expected_crc: Optional[int] = None,
        window_index: int = 0,
    ) -> Tuple[WindowReconstruction, str]:
        """Reconstruct one (possibly impaired) window.

        Returns ``(reconstruction, mode)`` with mode one of ``"hybrid"``,
        ``"cs-fallback"`` or ``"concealed"``.
        """
        if packet is None:
            return self._conceal(window_index), "concealed"

        recon, mode = decode_robust(
            packet, expected_crc, self._receiver, self._normal_receiver
        )
        self._last_codes = recon.x_codes
        return recon, mode

    def receive_stream(
        self,
        packets: List[Optional[WindowPacket]],
        crcs: Optional[List[int]] = None,
    ) -> List[Tuple[WindowReconstruction, str]]:
        """Receive a window sequence, applying concealment statefully."""
        out = []
        for idx, packet in enumerate(packets):
            crc = crcs[idx] if crcs is not None else None
            out.append(self.receive(packet, crc, window_index=idx))
        return out
