"""Diagnostic-quality metrics: does QRS detection survive compression?

PRD/SNR measure waveform fidelity; clinicians (and the paper's framing of
"diagnostic quality") care whether downstream algorithms still work.  The
standard scoring (ANSI/AAMI EC57) matches detected beats to reference
beats within a tolerance window and reports sensitivity and positive
predictivity.  :func:`beat_detection_score` applies it to any waveform
against reference annotations; :func:`reconstruction_fidelity` compares a
reconstruction against the beats detected on the *original*, isolating
the compression's effect from the detector's own misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["BeatMatchResult", "match_beats", "beat_detection_score",
           "reconstruction_fidelity"]

#: EC57-style beat-matching tolerance (150 ms).
DEFAULT_TOLERANCE_S = 0.15


@dataclass(frozen=True)
class BeatMatchResult:
    """Outcome of matching detected beats against a reference set."""

    true_positives: int
    false_negatives: int
    false_positives: int

    @property
    def sensitivity(self) -> float:
        """TP / (TP + FN); 1.0 when every reference beat was found."""
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0

    @property
    def positive_predictivity(self) -> float:
        """TP / (TP + FP); 1.0 when every detection was a real beat."""
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of sensitivity and positive predictivity."""
        s, p = self.sensitivity, self.positive_predictivity
        return 2 * s * p / (s + p) if (s + p) else 0.0


def match_beats(
    reference: Sequence[int],
    detected: Sequence[int],
    fs_hz: float,
    tolerance_s: float = DEFAULT_TOLERANCE_S,
) -> BeatMatchResult:
    """Greedy one-to-one matching of beat indices within a tolerance.

    Both sequences are sample indices; each reference beat may match at
    most one detection (the nearest unused one inside the window).
    """
    if fs_hz <= 0 or tolerance_s <= 0:
        raise ValueError("fs and tolerance must be positive")
    tol = tolerance_s * fs_hz
    ref = sorted(int(r) for r in reference)
    det = sorted(int(d) for d in detected)
    used = [False] * len(det)
    tp = 0
    for r in ref:
        best = None
        best_dist = tol + 1
        for j, d in enumerate(det):
            if used[j]:
                continue
            dist = abs(d - r)
            if dist <= tol and dist < best_dist:
                best = j
                best_dist = dist
            if d - r > tol:
                break
        if best is not None:
            used[best] = True
            tp += 1
    fn = len(ref) - tp
    fp = len(det) - tp
    return BeatMatchResult(
        true_positives=tp, false_negatives=fn, false_positives=fp
    )


def beat_detection_score(
    waveform: np.ndarray,
    reference_beats: Sequence[int],
    fs_hz: float,
    tolerance_s: float = DEFAULT_TOLERANCE_S,
) -> BeatMatchResult:
    """Run the QRS detector on a waveform and score it against reference
    beat positions."""
    from repro.signals.detectors import detect_r_peaks

    detected = detect_r_peaks(np.asarray(waveform, dtype=float), fs_hz)
    return match_beats(reference_beats, detected, fs_hz, tolerance_s)


def reconstruction_fidelity(
    original: np.ndarray,
    reconstructed: np.ndarray,
    fs_hz: float,
    tolerance_s: float = DEFAULT_TOLERANCE_S,
) -> BeatMatchResult:
    """Diagnostic fidelity of a reconstruction, detector-relative.

    Detects beats on the *original* waveform and scores the detector's
    output on the *reconstruction* against them — so a perfect score means
    "compression changed nothing the detector can see", independent of the
    detector's absolute accuracy.
    """
    from repro.signals.detectors import detect_r_peaks

    orig = np.asarray(original, dtype=float)
    recon = np.asarray(reconstructed, dtype=float)
    if orig.shape != recon.shape:
        raise ValueError("waveform length mismatch")
    ref = detect_r_peaks(orig, fs_hz)
    det = detect_r_peaks(recon, fs_hz)
    return match_beats(ref, det, fs_hz, tolerance_s)
