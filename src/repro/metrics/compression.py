"""Compression-ratio accounting (Section III-B and IV of the paper).

Two distinct compression ratios appear in the paper:

* the **CS-channel** compression ratio, Eq. (3)::

      CR = (b_orig - b_comp) / b_orig * 100

  where ``b_orig`` / ``b_comp`` count bits before/after compression.  When
  both sides use the same per-sample resolution this reduces to
  ``(1 - m/n) * 100`` for ``m`` measurements of an ``n``-sample window;

* the **low-resolution-channel** overhead, Eq. (2)::

      D_i = CR_i * i / 12

  i.e. the Huffman-coded ``i``-bit parallel stream, expressed as a fraction
  of the 12-bit original, is *added back* onto the CS-channel CR to obtain
  the net compression ratio of the hybrid design (e.g. 81 % - 7.86 % =
  73.14 % net in Section V).

Note a wrinkle in the paper's notation: Fig. 6 plots "Compression Ratio (%)"
with values in ``[0, 1]`` that *decrease* as coding gets better — it is
really the *compressed fraction* ``b_comp / b_orig`` of the low-res stream.
Eq. (2) only produces the Table I numbers under that reading (e.g. 10-bit:
``CR_10 ≈ 0.316`` compressed fraction gives ``D_10 = 0.316 * 10 / 12 =
26.3 %``), so this module names it :func:`compressed_fraction` and uses it
for ``D_i``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "compression_ratio",
    "compression_ratio_from_counts",
    "compressed_fraction",
    "cs_channel_cr",
    "measurements_for_cr",
    "lowres_overhead",
    "net_compression_ratio",
    "delta_from_cr",
    "cr_from_delta",
    "CompressionBudget",
    "ORIGINAL_RESOLUTION_BITS",
]

#: The paper treats the original ECG samples as 12-bit for overhead
#: accounting (Section III-B), even though MIT-BIH records are 11-bit.
ORIGINAL_RESOLUTION_BITS = 12


def compression_ratio_from_counts(bits_original: int, bits_compressed: int) -> float:
    """Eq. (3): CR in percent from raw bit counts.

    ``100 * (b_orig - b_comp) / b_orig``.  A negative value means the
    "compressed" representation is larger than the original.
    """
    if bits_original <= 0:
        raise ValueError("bits_original must be positive")
    if bits_compressed < 0:
        raise ValueError("bits_compressed cannot be negative")
    return (bits_original - bits_compressed) / bits_original * 100.0


# Backwards-friendly alias with the paper's name.
compression_ratio = compression_ratio_from_counts


def compressed_fraction(bits_original: int, bits_compressed: int) -> float:
    """Compressed size as a fraction of the original, ``b_comp / b_orig``.

    This is the quantity plotted in the paper's Fig. 6 for the
    low-resolution channel (labelled "Compression Ratio (%)" but valued in
    ``[0, 1]`` and decreasing with better coding), and the ``CR_i`` used by
    Eq. (2).
    """
    if bits_original <= 0:
        raise ValueError("bits_original must be positive")
    if bits_compressed < 0:
        raise ValueError("bits_compressed cannot be negative")
    return bits_compressed / bits_original


def cs_channel_cr(n_samples: int, m_measurements: int) -> float:
    """CS-channel CR (percent) for ``m`` measurements of an ``n`` window.

    Measurements and samples are taken at the same per-value resolution (the
    paper quantizes CS measurements at the full 12-bit depth), so Eq. (3)
    collapses to ``(1 - m/n) * 100``.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    if not 0 <= m_measurements <= n_samples:
        raise ValueError(
            f"m_measurements must be in [0, {n_samples}], got {m_measurements}"
        )
    return (1.0 - m_measurements / n_samples) * 100.0


def measurements_for_cr(n_samples: int, cr_percent: float) -> int:
    """Number of CS measurements that realises a target CS-channel CR.

    Rounds to the nearest integer measurement count; the achieved CR can be
    recovered with :func:`cs_channel_cr`.
    """
    if not 0.0 <= cr_percent <= 100.0:
        raise ValueError("cr_percent must be in [0, 100]")
    m = int(round(n_samples * (1.0 - cr_percent / 100.0)))
    return max(0, min(n_samples, m))


def delta_from_cr(cr_percent: float) -> float:
    """Undersampling ratio delta = m/n corresponding to a CS-channel CR."""
    return 1.0 - cr_percent / 100.0


def cr_from_delta(delta: float) -> float:
    """CS-channel CR (percent) corresponding to delta = m/n."""
    if not 0.0 <= delta <= 1.0:
        raise ValueError("delta must be in [0, 1]")
    return (1.0 - delta) * 100.0


def lowres_overhead(
    compressed_fraction_value: float,
    resolution_bits: int,
    original_bits: int = ORIGINAL_RESOLUTION_BITS,
) -> float:
    """Eq. (2): low-resolution-channel overhead ``D_i`` in percent.

    Parameters
    ----------
    compressed_fraction_value:
        ``CR_i`` of Eq. (2) — the Huffman-coded size of the ``i``-bit stream
        as a fraction of its *uncoded i-bit* size (see module docstring).
    resolution_bits:
        The low-res channel quantizer depth ``i``.
    original_bits:
        Reference resolution of the original samples (12 in the paper).
    """
    if not 0.0 <= compressed_fraction_value <= 1.0 + 1e-9:
        raise ValueError("compressed fraction must be in [0, 1]")
    if resolution_bits <= 0 or original_bits <= 0:
        raise ValueError("bit depths must be positive")
    return compressed_fraction_value * resolution_bits / original_bits * 100.0


def net_compression_ratio(cs_cr_percent: float, overhead_percent: float) -> float:
    """Net CR of the hybrid design: CS-channel CR minus low-res overhead.

    E.g. the paper's 81 % CS CR with 7.86 % 7-bit overhead gives 73.14 % net.
    """
    return cs_cr_percent - overhead_percent


@dataclass(frozen=True)
class CompressionBudget:
    """Full bit accounting for one transmitted hybrid window.

    Attributes
    ----------
    n_samples:
        Window length in Nyquist samples.
    original_bits:
        Bits the uncompressed window would need (``n * 12`` in the paper).
    cs_bits:
        Bits spent on CS measurements.
    lowres_bits:
        Bits spent on the Huffman-coded low-resolution stream (payload only).
    header_bits:
        Framing/header bits, if any.
    """

    n_samples: int
    original_bits: int
    cs_bits: int
    lowres_bits: int
    header_bits: int = 0

    @property
    def total_bits(self) -> int:
        """All bits actually transmitted for this window."""
        return self.cs_bits + self.lowres_bits + self.header_bits

    @property
    def cs_cr_percent(self) -> float:
        """CS-channel-only CR per Eq. (3)."""
        return compression_ratio_from_counts(self.original_bits, self.cs_bits)

    @property
    def net_cr_percent(self) -> float:
        """Net CR counting every transmitted bit against the original."""
        return compression_ratio_from_counts(self.original_bits, self.total_bits)

    @property
    def lowres_overhead_percent(self) -> float:
        """Low-res payload as a percentage of the original bits."""
        return self.lowres_bits / self.original_bits * 100.0
