"""Reconstruction-quality metrics used throughout the paper.

The paper (Section IV) evaluates diagnostic quality with the percentage
root-mean-square difference (PRD) and the associated signal-to-noise ratio
(SNR)::

    PRD = ||x - x~||_2 / ||x||_2 * 100
    SNR = -20 * log10(0.01 * PRD)

Both are implemented here verbatim, together with small helpers used by the
experiment drivers (per-window aggregation, the "good quality" threshold the
ECG-compression literature uses, and conversions between the two metrics).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "prd",
    "snr_db",
    "prd_to_snr",
    "snr_to_prd",
    "rmse",
    "nmse",
    "quality_grade",
    "GOOD_PRD_THRESHOLD",
    "VERY_GOOD_PRD_THRESHOLD",
    "mean_snr_over_windows",
]

#: Zigel et al. (2000) quality bands, universally used in the ECG-compression
#: literature (and implicitly by the paper's notion of "good" reconstruction):
#: PRD < 2 -> "very good", PRD < 9 -> "good".
VERY_GOOD_PRD_THRESHOLD = 2.0
GOOD_PRD_THRESHOLD = 9.0


def _as_float_vector(x: Sequence[float]) -> np.ndarray:
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 1:
        arr = arr.ravel()
    return arr


def prd(original: Sequence[float], reconstructed: Sequence[float]) -> float:
    """Percentage root-mean-square difference between two signals.

    Implements Eq. (IV) of the paper: ``PRD = ||x - x~|| / ||x|| * 100``.

    Parameters
    ----------
    original:
        Reference signal ``x`` (any 1-D sequence).
    reconstructed:
        Reconstruction ``x~``; must have the same length as ``original``.

    Returns
    -------
    float
        PRD in percent.  0.0 means a perfect reconstruction; values above
        100 mean the error has more energy than the signal itself.

    Raises
    ------
    ValueError
        If the two signals differ in length or the reference has zero
        energy (PRD is undefined in that case).
    """
    x = _as_float_vector(original)
    xr = _as_float_vector(reconstructed)
    if x.shape != xr.shape:
        raise ValueError(
            f"signal length mismatch: original has {x.size} samples, "
            f"reconstruction has {xr.size}"
        )
    denom = float(np.linalg.norm(x))
    if denom == 0.0:
        raise ValueError("PRD is undefined for an all-zero reference signal")
    return float(np.linalg.norm(x - xr) / denom * 100.0)


def prd_to_snr(prd_percent: float) -> float:
    """Convert a PRD value (percent) to SNR in dB.

    Implements the paper's ``SNR = -20 log10(0.01 PRD)``.
    """
    if prd_percent <= 0.0:
        raise ValueError("PRD must be positive to convert to a finite SNR")
    return float(-20.0 * np.log10(0.01 * prd_percent))


def snr_to_prd(snr_decibels: float) -> float:
    """Inverse of :func:`prd_to_snr`: SNR in dB back to PRD in percent."""
    return float(100.0 * 10.0 ** (-snr_decibels / 20.0))


def snr_db(original: Sequence[float], reconstructed: Sequence[float]) -> float:
    """Reconstruction SNR in dB, via the paper's PRD definition.

    Equivalent to ``20 log10(||x|| / ||x - x~||)``.  Returns ``inf`` for a
    bit-exact reconstruction.
    """
    p = prd(original, reconstructed)
    if p == 0.0:
        return float("inf")
    return prd_to_snr(p)


def rmse(original: Sequence[float], reconstructed: Sequence[float]) -> float:
    """Root-mean-square error between two equal-length signals."""
    x = _as_float_vector(original)
    xr = _as_float_vector(reconstructed)
    if x.shape != xr.shape:
        raise ValueError("signal length mismatch")
    return float(np.sqrt(np.mean((x - xr) ** 2)))


def nmse(original: Sequence[float], reconstructed: Sequence[float]) -> float:
    """Normalized mean-square error ``||x - x~||^2 / ||x||^2`` (linear)."""
    return (prd(original, reconstructed) / 100.0) ** 2


def quality_grade(prd_percent: float) -> str:
    """Map a PRD value onto the standard quality bands.

    Returns one of ``"very good"``, ``"good"`` or ``"not good"`` following
    the Zigel et al. banding that underlies the paper's "good reconstruction
    quality" claims.
    """
    if prd_percent < 0:
        raise ValueError("PRD cannot be negative")
    if prd_percent < VERY_GOOD_PRD_THRESHOLD:
        return "very good"
    if prd_percent < GOOD_PRD_THRESHOLD:
        return "good"
    return "not good"


def mean_snr_over_windows(prds: Iterable[float]) -> float:
    """Average the *SNR* (dB) corresponding to a collection of window PRDs.

    The paper's Fig. 7 plots "Averaged SNR over records"; the natural reading
    (and the one that reproduces the reported saturation behaviour) is that
    per-window SNRs are averaged in the dB domain.  Windows whose PRD is
    non-positive (perfect reconstructions) are clipped to a 120 dB ceiling so
    that a single exact window cannot drive the mean to infinity.
    """
    values = []
    for p in prds:
        if p <= 0.0:
            values.append(120.0)
        else:
            values.append(min(prd_to_snr(p), 120.0))
    if not values:
        raise ValueError("need at least one PRD value")
    return float(np.mean(values))
