"""Heart-rate-variability metrics from beat annotations.

The RR tachogram generator (:func:`repro.signals.ecgsyn.rr_tachogram`)
synthesizes HRV with a bimodal LF/HF spectrum; these are the standard
time- and frequency-domain statistics that *measure* HRV from detected or
annotated beats.  They close the loop for validation (the synthesizer's
parameters must be recoverable from its own output) and give the
diagnostic layer a second clinically meaningful readout: compression must
not corrupt RR statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["rr_intervals", "HrvSummary", "hrv_summary", "lf_hf_ratio"]


def rr_intervals(beat_samples: Sequence[int], fs_hz: float) -> np.ndarray:
    """RR intervals in seconds from beat sample indices (1-D output)."""
    if fs_hz <= 0:
        raise ValueError("fs must be positive")
    samples = np.asarray(sorted(int(s) for s in beat_samples), dtype=np.int64)
    if samples.size < 2:
        raise ValueError("need at least two beats")
    rr = np.diff(samples) / fs_hz
    if np.any(rr <= 0):
        raise ValueError("beat indices must be strictly increasing")
    return rr


@dataclass(frozen=True)
class HrvSummary:
    """Standard short-term HRV statistics.

    Attributes
    ----------
    mean_rr_s:
        Mean RR interval (seconds).
    mean_hr_bpm:
        Mean heart rate.
    sdnn_s:
        Standard deviation of RR intervals.
    rmssd_s:
        Root-mean-square of successive RR differences (vagal tone proxy).
    pnn50:
        Fraction of successive RR differences exceeding 50 ms.
    """

    mean_rr_s: float
    mean_hr_bpm: float
    sdnn_s: float
    rmssd_s: float
    pnn50: float


def hrv_summary(beat_samples: Sequence[int], fs_hz: float) -> HrvSummary:
    """Time-domain HRV summary from beat positions."""
    rr = rr_intervals(beat_samples, fs_hz)
    mean_rr = float(np.mean(rr))
    diffs = np.diff(rr)
    if diffs.size:
        rmssd = float(np.sqrt(np.mean(diffs**2)))
        pnn50 = float(np.mean(np.abs(diffs) > 0.05))
    else:
        rmssd = 0.0
        pnn50 = 0.0
    return HrvSummary(
        mean_rr_s=mean_rr,
        mean_hr_bpm=60.0 / mean_rr,
        sdnn_s=float(np.std(rr)),
        rmssd_s=rmssd,
        pnn50=pnn50,
    )


def lf_hf_ratio(
    beat_samples: Sequence[int],
    fs_hz: float,
    *,
    resample_hz: float = 4.0,
    lf_band: tuple = (0.04, 0.15),
    hf_band: tuple = (0.15, 0.4),
) -> float:
    """LF/HF spectral power ratio of the RR tachogram.

    The tachogram is linearly resampled onto a uniform grid, Hann-windowed
    and periodogram-integrated over the standard LF and HF bands — the
    quantity the synthesizer's ``RRParameters.lf_hf_ratio`` controls.
    """
    rr = rr_intervals(beat_samples, fs_hz)
    if rr.size < 8:
        raise ValueError("need at least 8 RR intervals for a spectrum")
    beat_times = np.cumsum(rr)
    grid = np.arange(beat_times[0], beat_times[-1], 1.0 / resample_hz)
    tachogram = np.interp(grid, beat_times, rr)
    tachogram = tachogram - float(np.mean(tachogram))
    windowed = tachogram * np.hanning(tachogram.size)
    spec = np.abs(np.fft.rfft(windowed)) ** 2
    freqs = np.fft.rfftfreq(windowed.size, d=1.0 / resample_hz)

    def band_power(lo: float, hi: float) -> float:
        return float(spec[(freqs >= lo) & (freqs < hi)].sum())

    lf = band_power(*lf_band)
    hf = band_power(*hf_band)
    if hf <= 0:
        raise ValueError("no HF power (record too short or beats too regular)")
    return lf / hf
