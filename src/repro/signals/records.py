"""Record containers mirroring the MIT-BIH / WFDB metadata the paper relies on.

The MIT-BIH Arrhythmia Database stores each record as integer ADC units
("ADU") with a gain (ADU per physical mV) and a baseline offset.  The paper's
plots (Fig. 2) are in raw ADC units around ~1000-1200 ADU; its metrics are
computed on the sampled waveform.  This module defines:

* :class:`RecordHeader` — sampling-rate / ADC metadata,
* :class:`Record` — an immutable single-lead record holding both the ADU
  stream and conversion helpers to physical millivolts,
* :class:`BeatAnnotation` — minimal beat labels produced by the synthesizer
  (useful for morphology-aware experiments and tests).

The synthetic database (:mod:`repro.signals.database`) produces these; all
downstream code (front-ends, experiments, benchmarks) consumes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

import numpy as np

__all__ = ["RecordHeader", "Record", "BeatAnnotation", "MITBIH_HEADER"]


@dataclass(frozen=True)
class RecordHeader:
    """Sampling and ADC metadata for a record.

    Attributes
    ----------
    fs_hz:
        Sampling frequency in Hz (360 for MIT-BIH).
    resolution_bits:
        ADC resolution in bits (11 for MIT-BIH).
    adc_gain:
        ADU per millivolt (200 for MIT-BIH: 11 bits over a 10 mV range).
    adc_zero:
        ADU value corresponding to 0 mV (1024 for MIT-BIH).
    lead:
        Lead name, informational only.
    """

    fs_hz: float = 360.0
    resolution_bits: int = 11
    adc_gain: float = 200.0
    adc_zero: int = 1024
    lead: str = "MLII"

    @property
    def adc_levels(self) -> int:
        """Number of representable ADC codes (``2**resolution_bits``)."""
        return 1 << self.resolution_bits

    @property
    def full_scale_mv(self) -> float:
        """Peak-to-peak input range in millivolts."""
        return self.adc_levels / self.adc_gain

    def mv_to_adu(self, millivolts: np.ndarray) -> np.ndarray:
        """Millivolts to clipped, rounded ADC units; same shape as the input."""
        adu = np.round(np.asarray(millivolts, dtype=float) * self.adc_gain) + self.adc_zero
        return np.clip(adu, 0, self.adc_levels - 1).astype(np.int64)

    def adu_to_mv(self, adu: np.ndarray) -> np.ndarray:
        """ADC units back to physical millivolts; same shape as ``adu``."""
        return (np.asarray(adu, dtype=float) - self.adc_zero) / self.adc_gain


#: Header matching the MIT-BIH Arrhythmia Database acquisition settings
#: described in Section IV of the paper.
MITBIH_HEADER = RecordHeader()


@dataclass(frozen=True)
class BeatAnnotation:
    """A single annotated beat.

    Attributes
    ----------
    sample:
        Index of the R-peak (or fiducial point) in the record.
    symbol:
        MIT-BIH-style beat code: ``"N"`` normal, ``"V"`` premature
        ventricular contraction, ``"A"`` atrial premature beat.
    """

    sample: int
    symbol: str = "N"


@dataclass(frozen=True)
class Record:
    """An immutable single-lead ECG record in ADC units.

    Use :meth:`signal_mv` for the physical waveform and :meth:`windows` to
    iterate fixed-size processing windows as the front-end does.
    """

    name: str
    adu: np.ndarray
    header: RecordHeader = field(default_factory=RecordHeader)
    annotations: Tuple[BeatAnnotation, ...] = ()

    def __post_init__(self) -> None:
        arr = np.asarray(self.adu)
        if arr.ndim != 1:
            raise ValueError("record signal must be one-dimensional")
        if arr.size == 0:
            raise ValueError("record signal must be non-empty")
        if not np.issubdtype(arr.dtype, np.integer):
            raise TypeError("record signal must be integer ADC units")
        if arr.min() < 0 or arr.max() >= self.header.adc_levels:
            raise ValueError(
                "ADC samples out of range for a "
                f"{self.header.resolution_bits}-bit converter"
            )
        object.__setattr__(self, "adu", arr.astype(np.int64))

    def __len__(self) -> int:
        return int(self.adu.size)

    @property
    def duration_s(self) -> float:
        """Record duration in seconds."""
        return len(self) / self.header.fs_hz

    def signal_mv(self) -> np.ndarray:
        """The waveform in physical millivolts (1-D float array)."""
        return self.header.adu_to_mv(self.adu)

    def time_axis(self) -> np.ndarray:
        """Sample times in seconds; 1-D, one entry per sample."""
        return np.arange(len(self)) / self.header.fs_hz

    def windows(
        self, window_len: int, *, drop_last: bool = True
    ) -> Iterator[np.ndarray]:
        """Iterate non-overlapping fixed-size windows of raw ADU samples.

        This mirrors the paper's "fixed size processing window" framing.
        With ``drop_last`` (default) a trailing partial window is skipped,
        matching what a streaming front-end would transmit.
        """
        if window_len <= 0:
            raise ValueError("window_len must be positive")
        n_full = len(self) // window_len
        for k in range(n_full):
            yield self.adu[k * window_len : (k + 1) * window_len]
        if not drop_last and len(self) % window_len:
            yield self.adu[n_full * window_len :]

    def window_count(self, window_len: int) -> int:
        """Number of full windows :meth:`windows` will yield."""
        if window_len <= 0:
            raise ValueError("window_len must be positive")
        return len(self) // window_len

    def beat_samples(self, symbol: str = "") -> List[int]:
        """Annotation sample indices, optionally filtered by beat symbol."""
        return [
            a.sample for a in self.annotations if not symbol or a.symbol == symbol
        ]

    def mean_heart_rate_bpm(self) -> float:
        """Mean heart rate estimated from the beat annotations."""
        peaks = self.beat_samples()
        if len(peaks) < 2:
            raise ValueError("need at least two annotated beats")
        rr_s = np.diff(np.asarray(peaks)) / self.header.fs_hz
        return float(60.0 / np.mean(rr_s))


def concatenate_records(name: str, records: Sequence[Record]) -> Record:
    """Concatenate several records with identical headers into one.

    Annotation sample indices are shifted appropriately.  Mostly useful in
    tests and long-run examples.
    """
    if not records:
        raise ValueError("need at least one record")
    header = records[0].header
    for rec in records[1:]:
        if rec.header != header:
            raise ValueError("all records must share the same header")
    adu = np.concatenate([rec.adu for rec in records])
    annotations: List[BeatAnnotation] = []
    offset = 0
    for rec in records:
        annotations.extend(
            BeatAnnotation(a.sample + offset, a.symbol) for a in rec.annotations
        )
        offset += len(rec)
    return Record(name=name, adu=adu, header=header, annotations=tuple(annotations))
