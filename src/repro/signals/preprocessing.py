"""Receiver-side ECG preprocessing: baseline removal and notch filtering.

Ambulatory recordings carry baseline wander and mains hum (modelled on the
acquisition side by :mod:`repro.signals.noise`).  Downstream consumers of
the *reconstructed* stream — displays, detectors, feature extractors —
conventionally clean it first.  These are the standard zero-phase filters:

* :func:`remove_baseline` — high-pass (default 0.5 Hz) via forward-backward
  second-order sections;
* :func:`notch_mains` — IIR notch at 50/60 Hz with configurable Q;
* :func:`clean` — both, in the conventional order.

Zero-phase filtering preserves QRS timing, which matters because the
diagnostic metrics match beats within a +-150 ms window.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sps

from repro.devtools.contracts import array_contract

__all__ = ["remove_baseline", "notch_mains", "clean"]


def _check(x: np.ndarray, fs_hz: float) -> np.ndarray:
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 1:
        raise ValueError("expected a 1-D signal")
    if fs_hz <= 0:
        raise ValueError("fs must be positive")
    return arr


@array_contract(x=dict(ndim=1, finite=True))
def remove_baseline(
    x: np.ndarray, fs_hz: float, cutoff_hz: float = 0.5, order: int = 4
) -> np.ndarray:
    """Zero-phase high-pass to remove baseline wander; same shape as ``x``.

    Parameters
    ----------
    x:
        Input waveform.
    fs_hz:
        Sampling rate.
    cutoff_hz:
        High-pass corner; 0.5 Hz is the AHA-recommended value that leaves
        the ST segment intact.
    order:
        Butterworth order (effective order doubles with filtfilt).
    """
    arr = _check(x, fs_hz)
    if cutoff_hz <= 0 or cutoff_hz >= fs_hz / 2:
        raise ValueError("cutoff must be in (0, Nyquist)")
    if order < 1:
        raise ValueError("order must be >= 1")
    if arr.size < 3 * (order + 1):
        raise ValueError("signal too short for the requested filter")
    sos = sps.butter(order, cutoff_hz / (fs_hz / 2), btype="high", output="sos")
    return sps.sosfiltfilt(sos, arr)


@array_contract(x=dict(ndim=1, finite=True))
def notch_mains(
    x: np.ndarray, fs_hz: float, mains_hz: float = 60.0, q_factor: float = 30.0
) -> np.ndarray:
    """Zero-phase IIR notch at the mains frequency; same shape as ``x``.

    ``q_factor`` sets the notch width (center / -3 dB bandwidth); 30 gives
    a ~2 Hz notch at 60 Hz.
    """
    arr = _check(x, fs_hz)
    if not 0 < mains_hz < fs_hz / 2:
        raise ValueError("mains frequency must be below Nyquist")
    if q_factor <= 0:
        raise ValueError("q_factor must be positive")
    b, a = sps.iirnotch(mains_hz / (fs_hz / 2), q_factor)
    return sps.filtfilt(b, a, arr)


def clean(
    x: np.ndarray,
    fs_hz: float,
    *,
    baseline_cutoff_hz: float = 0.5,
    mains_hz: float = 60.0,
) -> np.ndarray:
    """Baseline removal followed by a mains notch (standard front-end
    display chain); same shape as the input."""
    out = remove_baseline(x, fs_hz, baseline_cutoff_hz)
    return notch_mains(out, fs_hz, mains_hz)
