"""QRS detection (Pan-Tompkins style) for diagnostic-quality evaluation.

The paper frames PRD/SNR as proxies for *diagnostic* quality ("to quantify
the compression performance while assessing the diagnostic quality of the
compressed ECG records", §IV).  The direct measurement is whether a
clinical algorithm still works on the reconstruction — and the canonical
clinical algorithm is QRS detection.  This module implements a compact
Pan-Tompkins-style detector:

1. band-pass 5-15 Hz (the QRS energy band),
2. differentiate, square,
3. moving-window integration (~150 ms),
4. adaptive dual-threshold peak picking with a 200 ms refractory period.

:mod:`repro.metrics.diagnostic` uses it to score reconstructions by beat
sensitivity/PPV against the synthesizer's ground-truth annotations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np
from scipy import signal as sps

__all__ = ["QrsDetector", "detect_r_peaks"]


@dataclass(frozen=True)
class QrsDetector:
    """Configurable Pan-Tompkins-style R-peak detector.

    Attributes
    ----------
    band_hz:
        Pass band of the QRS-enhancement filter.
    integration_window_s:
        Width of the moving-average integrator.
    refractory_s:
        Minimum spacing between detections (physiological floor).
    threshold_fraction:
        Adaptive threshold as a fraction of the running signal-peak
        estimate.
    prominence_ratio:
        Minimum ratio of the typical candidate-peak height to the
        inter-beat feature floor for the signal to count as containing
        QRS complexes at all (white noise sits near 1.7; clean ECG far
        above 10).
    """

    band_hz: tuple = (5.0, 15.0)
    integration_window_s: float = 0.15
    refractory_s: float = 0.2
    threshold_fraction: float = 0.35
    prominence_ratio: float = 2.5

    def __post_init__(self) -> None:
        lo, hi = self.band_hz
        if not 0 < lo < hi:
            raise ValueError("band must satisfy 0 < low < high")
        if self.integration_window_s <= 0 or self.refractory_s <= 0:
            raise ValueError("window and refractory period must be positive")
        if not 0 < self.threshold_fraction < 1:
            raise ValueError("threshold_fraction must be in (0, 1)")
        if self.prominence_ratio <= 1.0:
            raise ValueError("prominence_ratio must exceed 1")

    # ------------------------------------------------------------------
    def _feature_signal(self, x: np.ndarray, fs_hz: float) -> np.ndarray:
        nyq = fs_hz / 2.0
        lo = min(max(self.band_hz[0] / nyq, 1e-5), 0.95)
        hi = min(max(self.band_hz[1] / nyq, lo + 1e-4), 0.99)
        sos = sps.butter(2, [lo, hi], btype="band", output="sos")
        filtered = sps.sosfiltfilt(sos, x)
        derivative = np.gradient(filtered)
        squared = derivative**2
        win = max(1, int(round(self.integration_window_s * fs_hz)))
        kernel = np.ones(win) / win
        return np.convolve(squared, kernel, mode="same")

    def detect(self, x: np.ndarray, fs_hz: float) -> List[int]:
        """R-peak sample indices in ``x`` (any units, any baseline).

        Parameters
        ----------
        x:
            The ECG waveform (1-D).
        fs_hz:
            Sampling rate.

        Returns
        -------
        list of int
            Ascending peak positions.  Empty for signals with no
            detectable QRS energy.
        """
        arr = np.asarray(x, dtype=float)
        if arr.ndim != 1:
            raise ValueError("detector expects a 1-D signal")
        if fs_hz <= 0:
            raise ValueError("fs must be positive")
        if arr.size < int(fs_hz):  # need at least ~1 s of context
            return []
        feature = self._feature_signal(arr - float(np.mean(arr)), fs_hz)

        refractory = int(round(self.refractory_s * fs_hz))
        # Adaptive threshold from the *median* candidate-peak height: the
        # typical beat sets the scale, so occasional large ectopic beats
        # (wide PVCs integrate to much bigger feature values) cannot push
        # normal beats below threshold.
        raw_peaks, _ = sps.find_peaks(feature, distance=refractory)
        if raw_peaks.size == 0:
            return []
        heights = feature[raw_peaks]
        # The integrator output is near zero between beats (QRS duty cycle
        # ~15 %), so the feature's *median* is the inter-beat noise floor;
        # candidate heights well above it are beats.  Using the median
        # keeps the floor robust to a few high-energy ectopic beats.
        floor = float(np.median(feature))
        beat_heights = heights[heights >= max(floor, 1e-300)]
        if beat_heights.size == 0:
            return []
        scale = float(np.median(beat_heights))
        if scale <= 0 or scale < self.prominence_ratio * floor:
            # QRS complexes stand far above the inter-beat floor; anything
            # flatter (white noise, flatline) has no beat-like prominence.
            return []
        threshold = self.threshold_fraction * scale
        candidates = raw_peaks[heights >= threshold]
        peaks: List[int] = []
        half = int(round(0.08 * fs_hz))  # refine inside +-80 ms
        for c in candidates:
            lo_i = max(0, c - half)
            hi_i = min(arr.size, c + half + 1)
            window = arr[lo_i:hi_i]
            # R wave may be positive or negative; take the dominant
            # excursion from the local median.
            local = window - float(np.median(window))
            peaks.append(lo_i + int(np.argmax(np.abs(local))))
        # Deduplicate refined peaks that collapsed together.
        deduped: List[int] = []
        for p in sorted(peaks):
            if not deduped or p - deduped[-1] >= refractory // 2:
                deduped.append(p)
        return deduped


def detect_r_peaks(x: np.ndarray, fs_hz: float) -> List[int]:
    """R-peak indices with the default detector configuration."""
    return QrsDetector().detect(x, fs_hz)
