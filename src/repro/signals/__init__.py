"""ECG signal substrate: synthesizer, noise models and the synthetic database.

Substitutes the MIT-BIH Arrhythmia Database (unavailable offline) with a
deterministic ECGSYN-style synthetic database sharing its sampling metadata;
see DESIGN.md §2 for the substitution rationale.
"""

from repro.signals.database import (
    DEFAULT_RECORD_DURATION_S,
    MITBIH_RECORD_NAMES,
    RecordProfile,
    SyntheticDatabase,
    load_database,
    load_record,
    load_record_pair,
    record_profile,
)
from repro.signals.ecgsyn import (
    NORMAL_MORPHOLOGY,
    PVC_MORPHOLOGY,
    PVC_V5_MORPHOLOGY,
    V5_MORPHOLOGY,
    EcgMorphology,
    RRParameters,
    integrate_reference,
    rr_tachogram,
    synthesize_ecg,
)
from repro.signals.noise import (
    NoiseProfile,
    baseline_wander,
    electrode_motion,
    muscle_artifact,
    powerline_interference,
    white_noise,
)
from repro.signals.detectors import QrsDetector, detect_r_peaks
from repro.signals.hrv import HrvSummary, hrv_summary, lf_hf_ratio, rr_intervals
from repro.signals.preprocessing import clean, notch_mains, remove_baseline
from repro.signals.records import (
    BeatAnnotation,
    MITBIH_HEADER,
    Record,
    RecordHeader,
)
from repro.signals.wfdb_io import (
    pack_212,
    read_header,
    read_record,
    unpack_212,
    write_record,
    write_record_pair,
)

__all__ = [
    "BeatAnnotation",
    "DEFAULT_RECORD_DURATION_S",
    "EcgMorphology",
    "HrvSummary",
    "MITBIH_HEADER",
    "hrv_summary",
    "lf_hf_ratio",
    "rr_intervals",
    "MITBIH_RECORD_NAMES",
    "NORMAL_MORPHOLOGY",
    "NoiseProfile",
    "PVC_MORPHOLOGY",
    "PVC_V5_MORPHOLOGY",
    "QrsDetector",
    "Record",
    "V5_MORPHOLOGY",
    "detect_r_peaks",
    "load_record_pair",
    "write_record_pair",
    "RecordHeader",
    "RecordProfile",
    "RRParameters",
    "SyntheticDatabase",
    "baseline_wander",
    "clean",
    "electrode_motion",
    "notch_mains",
    "remove_baseline",
    "integrate_reference",
    "load_database",
    "load_record",
    "muscle_artifact",
    "pack_212",
    "powerline_interference",
    "read_header",
    "read_record",
    "record_profile",
    "rr_tachogram",
    "synthesize_ecg",
    "unpack_212",
    "white_noise",
    "write_record",
]
