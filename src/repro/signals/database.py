"""A deterministic synthetic stand-in for the MIT-BIH Arrhythmia Database.

The paper's Section IV evaluates on the 48 half-hour MIT-BIH records
(360 Hz, 11-bit over 10 mV).  The raw database cannot be bundled here, so
this module builds a *synthetic* database with the same shape:

* the same 48 record names,
* the same header (360 Hz, 11-bit, gain 200 ADU/mV, baseline 1024 ADU),
* per-record morphology diversity (heart rate, wave amplitudes, noise
  levels, and ectopic PVC beats for a subset of records), all derived
  deterministically from the record name, so every run of every experiment
  sees byte-identical data.

Record duration is configurable (the paper's half-hour records would make
the benchmark suite needlessly slow); experiments default to 60-second
records, which is plenty for stable window statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.signals.ecgsyn import (
    NORMAL_MORPHOLOGY,
    PVC_MORPHOLOGY,
    PVC_V5_MORPHOLOGY,
    V5_MORPHOLOGY,
    EcgMorphology,
    RRParameters,
    _gaussian_wave_drive,
    rr_tachogram,
)
from repro.signals.noise import NoiseProfile
from repro.signals.records import BeatAnnotation, MITBIH_HEADER, Record, RecordHeader

__all__ = [
    "MITBIH_RECORD_NAMES",
    "RecordProfile",
    "record_profile",
    "synthesize_with_beats_loop",
    "load_record",
    "load_database",
    "SyntheticDatabase",
    "DEFAULT_RECORD_DURATION_S",
    "iter_record_chunks",
    "interleave_playback",
]

#: The 48 record names of the MIT-BIH Arrhythmia Database.
MITBIH_RECORD_NAMES: Tuple[str, ...] = (
    "100", "101", "102", "103", "104", "105", "106", "107", "108", "109",
    "111", "112", "113", "114", "115", "116", "117", "118", "119", "121",
    "122", "123", "124", "200", "201", "202", "203", "205", "207", "208",
    "209", "210", "212", "213", "214", "215", "217", "219", "220", "221",
    "222", "223", "228", "230", "231", "232", "233", "234",
)

DEFAULT_RECORD_DURATION_S = 60.0


@dataclass(frozen=True)
class RecordProfile:
    """Deterministic per-record synthesis parameters.

    Derived from the record name so the database is reproducible; see
    :func:`record_profile`.
    """

    name: str
    seed: int
    mean_hr_bpm: float
    std_hr_bpm: float
    amplitude_mv: float
    noise_scale: float
    pvc_probability: float
    mains_hz: float

    def rr_params(self) -> RRParameters:
        """RR-process parameters for this record."""
        return RRParameters(
            mean_hr_bpm=self.mean_hr_bpm, std_hr_bpm=self.std_hr_bpm
        )

    def noise_profile(self) -> NoiseProfile:
        """Noise profile for this record (scaled base ambulatory profile)."""
        base = NoiseProfile(mains_hz=self.mains_hz)
        return base.scaled(self.noise_scale)


def record_profile(name: str) -> RecordProfile:
    """Build the deterministic :class:`RecordProfile` for a record name.

    The record name seeds a PRNG from which all per-record parameters are
    drawn, giving the database stable morphology diversity: heart rates in
    55-95 bpm, R amplitudes 0.6-1.5 mV, noise scaling 0.5x-1.6x, and PVCs
    in roughly a third of the records (like the real database, where some
    records are dominated by ectopy and others are clean sinus rhythm).
    """
    if name not in MITBIH_RECORD_NAMES:
        raise KeyError(
            f"unknown record {name!r}; valid names are the 48 MIT-BIH record ids"
        )
    seed = int(name) * 7919 + 17
    rng = np.random.default_rng(seed)
    mean_hr = float(rng.uniform(55.0, 95.0))
    std_hr = float(rng.uniform(0.5, 3.0))
    amplitude = float(rng.uniform(0.6, 1.5))
    noise_scale = float(rng.uniform(0.5, 1.6))
    has_pvc = rng.uniform() < 0.35
    pvc_prob = float(rng.uniform(0.03, 0.15)) if has_pvc else 0.0
    return RecordProfile(
        name=name,
        seed=seed,
        mean_hr_bpm=mean_hr,
        std_hr_bpm=std_hr,
        amplitude_mv=amplitude,
        noise_scale=noise_scale,
        pvc_probability=pvc_prob,
        mains_hz=60.0,
    )


#: Per-lead (sinus, PVC) morphology pairs.  Leads share the phase
#: trajectory and beat schedule — two projections of one dipole — so
#: multi-lead records stay sample-aligned.
_LEAD_MORPHOLOGIES: Dict[str, Tuple[EcgMorphology, EcgMorphology]] = {
    "MLII": (NORMAL_MORPHOLOGY, PVC_MORPHOLOGY),
    "V5": (V5_MORPHOLOGY, PVC_V5_MORPHOLOGY),
}


def _synthesize_with_beats(
    profile: RecordProfile,
    duration_s: float,
    fs_hz: float,
    lead: str = "MLII",
) -> Tuple[np.ndarray, List[BeatAnnotation]]:
    """Phase-domain synthesis with per-beat morphology and annotations.

    Replicates :func:`repro.signals.ecgsyn.synthesize_ecg` but (a) selects a
    morphology per beat so PVCs can be interleaved with sinus beats,
    (b) projects onto the requested lead, and (c) returns R-peak
    annotations derived from the phase trajectory.  All randomness is
    seeded from the profile only, so different leads of the same record
    share RR timing and beat types exactly.
    """
    from scipy import signal as sps

    if lead not in _LEAD_MORPHOLOGIES:
        raise KeyError(
            f"unknown lead {lead!r}; choose from {sorted(_LEAD_MORPHOLOGIES)}"
        )
    rng = np.random.default_rng(profile.seed + 1)
    n = int(round(duration_s * fs_hz))
    dt = 1.0 / fs_hz

    rr = rr_tachogram(n, fs_hz, profile.rr_params(), rng)
    omega = 2.0 * np.pi / rr

    theta_unwrapped = np.empty(n)
    theta_unwrapped[0] = -np.pi  # start at the beginning of a cycle
    if n > 1:
        theta_unwrapped[1:] = theta_unwrapped[0] + np.cumsum(omega[:-1]) * dt
    theta = (theta_unwrapped + np.pi) % (2.0 * np.pi) - np.pi

    # Beat index of every sample: cycle k covers unwrapped phase
    # [-pi + 2*pi*k, -pi + 2*pi*(k+1)).
    beat_index = np.floor((theta_unwrapped + np.pi) / (2.0 * np.pi)).astype(int)
    n_beats = int(beat_index.max()) + 1

    # Choose per-beat morphology (beat schedule is lead-independent).
    beat_is_pvc = rng.uniform(size=n_beats) < profile.pvc_probability
    sinus_morph, pvc_morph = _LEAD_MORPHOLOGIES[lead]
    morphologies: Dict[bool, EcgMorphology] = {
        False: sinus_morph,
        True: pvc_morph,
    }

    drive = np.empty(n)
    for is_pvc, morph in morphologies.items():
        mask = beat_is_pvc[beat_index] == is_pvc
        if np.any(mask):
            drive[mask] = _gaussian_wave_drive(theta[mask], omega[mask], morph)

    t = np.arange(n) * dt
    z0 = 0.005 * np.sin(2.0 * np.pi * 0.25 * t)
    u = z0 + drive
    decay = float(np.exp(-dt))
    z = sps.lfilter([1.0 - decay], [1.0, -decay], u)

    peak = float(np.max(np.abs(z))) if n else 0.0
    if peak > 0:
        z = z * (profile.amplitude_mv / peak)
    return z, _r_peak_annotations(theta, beat_index, beat_is_pvc, n_beats)


def _r_peak_annotations(
    theta: np.ndarray,
    beat_index: np.ndarray,
    beat_is_pvc: np.ndarray,
    n_beats: int,
) -> List[BeatAnnotation]:
    """R peaks: the sample in each beat closest to theta == 0 (the R wave's
    angular position in both morphologies' QRS complex)."""
    annotations: List[BeatAnnotation] = []
    for k in range(n_beats):
        samples = np.nonzero(beat_index == k)[0]
        if samples.size == 0:
            continue
        local = samples[np.argmin(np.abs(theta[samples]))]
        # Skip partial beats at the edges whose R wave falls outside.
        if abs(theta[local]) > 0.2:
            continue
        symbol = "V" if beat_is_pvc[k] else "N"
        annotations.append(BeatAnnotation(sample=int(local), symbol=symbol))
    return annotations


def synthesize_with_beats_loop(
    profile: RecordProfile,
    duration_s: float,
    fs_hz: float,
    lead: str = "MLII",
) -> Tuple[np.ndarray, List[BeatAnnotation]]:
    """Per-sample scalar oracle for :func:`_synthesize_with_beats`.

    Same randomness, beat schedule and discretization, executed one
    sample at a time (phase accumulation, per-beat morphology selection,
    forcing evaluation and the exponential-integrator update).  The
    waveform and annotations are **bit-identical** to the array path —
    asserted by the test suite, and the basis of the database-synthesis
    speedup reported in ``BENCH_encode.json``.
    """
    if lead not in _LEAD_MORPHOLOGIES:
        raise KeyError(
            f"unknown lead {lead!r}; choose from {sorted(_LEAD_MORPHOLOGIES)}"
        )
    rng = np.random.default_rng(profile.seed + 1)
    n = int(round(duration_s * fs_hz))
    dt = 1.0 / fs_hz

    rr = rr_tachogram(n, fs_hz, profile.rr_params(), rng)
    omega = 2.0 * np.pi / rr

    theta_unwrapped = np.empty(n)
    theta = np.empty(n)
    beat_index = np.empty(n, dtype=int)
    accumulated = omega.dtype.type(0.0)
    theta_unwrapped[0] = -np.pi
    for k in range(1, n):
        accumulated = accumulated + omega[k - 1]
        theta_unwrapped[k] = -np.pi + accumulated * dt
    for k in range(n):
        theta[k] = (theta_unwrapped[k] + np.pi) % (2.0 * np.pi) - np.pi
        beat_index[k] = int(
            np.floor((theta_unwrapped[k] + np.pi) / (2.0 * np.pi))
        )
    n_beats = int(beat_index.max()) + 1

    beat_is_pvc = rng.uniform(size=n_beats) < profile.pvc_probability
    sinus_morph, pvc_morph = _LEAD_MORPHOLOGIES[lead]

    decay = float(np.exp(-dt))
    zi_gain = 1.0 - decay
    z = np.empty(n)
    state = 0.0
    for k in range(n):
        morph = pvc_morph if beat_is_pvc[beat_index[k]] else sinus_morph
        drive_k = _gaussian_wave_drive(
            theta[k : k + 1], omega[k : k + 1], morph
        )[0]
        z0_k = 0.005 * np.sin(2.0 * np.pi * 0.25 * (np.float64(k) * dt))
        y_k = zi_gain * (z0_k + drive_k) + state
        state = decay * y_k
        z[k] = y_k

    peak = float(np.max(np.abs(z))) if n else 0.0
    if peak > 0:
        z = z * (profile.amplitude_mv / peak)
    return z, _r_peak_annotations(theta, beat_index, beat_is_pvc, n_beats)


@lru_cache(maxsize=64)
def _load_record_cached(
    name: str, duration_s: float, fs_hz: float, clean: bool, lead: str
) -> Record:
    """Synthesize (or fetch) the record for one exact parameter tuple.

    LRU semantics the rest of the repo relies on:

    * a cache hit returns the *same* :class:`Record` object — callers
      must treat records as immutable (``Record`` is frozen and its
      arrays are never written in-repo);
    * eviction (more than 64 distinct parameter tuples in flight) only
      costs time: synthesis is a deterministic function of the key, so a
      re-synthesized record is byte-identical to the evicted one.  Both
      properties are pinned by ``tests/signals/test_database.py``.
    """
    profile = record_profile(name)
    header = RecordHeader(
        fs_hz=fs_hz,
        resolution_bits=MITBIH_HEADER.resolution_bits,
        adc_gain=MITBIH_HEADER.adc_gain,
        adc_zero=MITBIH_HEADER.adc_zero,
        lead=lead,
    )
    clean_mv, annotations = _synthesize_with_beats(
        profile, duration_s, fs_hz, lead
    )
    if clean:
        signal_mv = clean_mv
    else:
        # Each lead sees its own electrode/muscle noise realization
        # (different electrodes), seeded deterministically per lead.
        lead_offset = sum(ord(c) for c in lead)
        noise_rng = np.random.default_rng(profile.seed + 2 + lead_offset)
        signal_mv = clean_mv + profile.noise_profile().render(
            duration_s, fs_hz, noise_rng
        )
    adu = header.mv_to_adu(signal_mv)
    return Record(
        name=name, adu=adu, header=header, annotations=tuple(annotations)
    )


def load_record(
    name: str,
    *,
    duration_s: float = DEFAULT_RECORD_DURATION_S,
    fs_hz: float = 360.0,
    clean: bool = False,
    lead: str = "MLII",
) -> Record:
    """Load one synthetic record by its MIT-BIH name.

    Parameters
    ----------
    name:
        One of the 48 MIT-BIH record ids (e.g. ``"100"``).
    duration_s:
        Record length in seconds (default 60 s; the real records are 30 min
        but shorter records give the same window statistics far faster).
    fs_hz:
        Sampling rate; 360 Hz matches the original database.
    clean:
        If true, skip the additive noise model (useful for tests that need
        a noise-free reference).
    lead:
        ``"MLII"`` (default, the lead the paper's experiments use) or
        ``"V5"``; both leads of a record share beat timing exactly.

    Returns
    -------
    Record
        Deterministic for a given ``(name, duration_s, fs_hz, clean, lead)``.
        Results are memoized per exact parameter tuple (LRU, 64 entries);
        repeated loads return the same immutable object, and eviction
        never changes record bytes (see :func:`_load_record_cached`).
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    return _load_record_cached(
        name, float(duration_s), float(fs_hz), bool(clean), str(lead)
    )


def load_record_pair(
    name: str,
    *,
    duration_s: float = DEFAULT_RECORD_DURATION_S,
    fs_hz: float = 360.0,
    clean: bool = False,
) -> Tuple[Record, Record]:
    """Both leads of a record (MLII, V5), sample-aligned.

    Mirrors the two-channel structure of the real MIT-BIH records; the
    leads share RR timing and beat types (they are two projections of the
    same cardiac dipole), so their annotations are identical.
    """
    mlii = load_record(
        name, duration_s=duration_s, fs_hz=fs_hz, clean=clean, lead="MLII"
    )
    v5 = load_record(
        name, duration_s=duration_s, fs_hz=fs_hz, clean=clean, lead="V5"
    )
    return mlii, v5


def load_database(
    names: Optional[Sequence[str]] = None,
    *,
    duration_s: float = DEFAULT_RECORD_DURATION_S,
    fs_hz: float = 360.0,
    clean: bool = False,
) -> "SyntheticDatabase":
    """Load the full 48-record synthetic database (or a named subset)."""
    selected = tuple(names) if names is not None else MITBIH_RECORD_NAMES
    records = tuple(
        load_record(n, duration_s=duration_s, fs_hz=fs_hz, clean=clean)
        for n in selected
    )
    return SyntheticDatabase(records)


def iter_record_chunks(
    record: Record, chunk_size: int
) -> Iterator[np.ndarray]:
    """Play a record back as successive fixed-size sample chunks.

    Yields the record's raw ADU samples in arrival order as 1-D integer
    arrays of shape ``(chunk_size,)`` (the final chunk may be shorter).
    Purely index-driven — no sleeps, no wall clock — so streaming tests
    replay a "live" acquisition deterministically.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    for start in range(0, len(record), chunk_size):
        yield record.adu[start : start + chunk_size]


def interleave_playback(
    records: Sequence[Record], chunk_size: int
) -> Iterator[Tuple[str, np.ndarray]]:
    """Round-robin chunked playback across several records.

    Yields ``(record_name, chunk)`` pairs, cycling through the records
    in order and emitting one ``chunk_size`` slice from each per cycle
    (chunks are 1-D integer arrays; a record's final chunk may be
    shorter).  Records that run out simply drop from the rotation, so
    differing record lengths are fine.  The ordering is a deterministic
    function of the inputs alone — this is how the ``repro stream``
    driver simulates N concurrent patients without any wall-clock
    dependency.
    """
    if not records:
        raise ValueError("need at least one record")
    streams = [(rec.name, iter_record_chunks(rec, chunk_size)) for rec in records]
    while streams:
        still_live = []
        for name, chunks in streams:
            chunk = next(chunks, None)
            if chunk is None:
                continue
            still_live.append((name, chunks))
            yield name, chunk
        streams = still_live


@dataclass(frozen=True)
class SyntheticDatabase:
    """An ordered collection of :class:`Record` with convenience access."""

    records: Tuple[Record, ...]

    def __post_init__(self) -> None:
        if not self.records:
            raise ValueError("database cannot be empty")
        names = [r.name for r in self.records]
        if len(set(names)) != len(names):
            raise ValueError("duplicate record names in database")

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def __getitem__(self, name: str) -> Record:
        for rec in self.records:
            if rec.name == name:
                return rec
        raise KeyError(f"record {name!r} not in database")

    @property
    def names(self) -> Tuple[str, ...]:
        """Record names in database order."""
        return tuple(r.name for r in self.records)

    def total_duration_s(self) -> float:
        """Sum of all record durations in seconds."""
        return float(sum(r.duration_s for r in self.records))

    def subset(self, names: Sequence[str]) -> "SyntheticDatabase":
        """A new database containing only the named records, in order."""
        return SyntheticDatabase(tuple(self[n] for n in names))
