"""Physiological and instrumentation noise models for synthetic ECG.

Real ambulatory recordings (like the MIT-BIH records the paper uses) are
contaminated by several characteristic disturbances.  Reproducing them
matters here because both the *compressibility* of the signal and the
*difference-entropy* of the low-resolution stream (Figs. 4-6) depend on the
noise floor, not only on the clean PQRST morphology.

All generators return waveforms in millivolts at the requested sampling
rate and are deterministic given an ``rng``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import signal as sps

__all__ = [
    "baseline_wander",
    "powerline_interference",
    "muscle_artifact",
    "electrode_motion",
    "white_noise",
    "NoiseProfile",
]


def _check(duration_s: float, fs_hz: float) -> int:
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    if fs_hz <= 0:
        raise ValueError("fs_hz must be positive")
    return int(round(duration_s * fs_hz))


def baseline_wander(
    duration_s: float,
    fs_hz: float,
    *,
    amplitude_mv: float = 0.05,
    cutoff_hz: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Low-frequency baseline drift (respiration, electrode drift); 1-D.

    Generated as white noise low-pass filtered below ``cutoff_hz`` and
    rescaled to the requested RMS amplitude.
    """
    n = _check(duration_s, fs_hz)
    rng = rng or np.random.default_rng()
    raw = rng.standard_normal(n)
    nyq = fs_hz / 2.0
    wn = min(max(cutoff_hz / nyq, 1e-6), 0.99)
    # Second-order sections: a plain transfer function is numerically
    # unstable at cutoffs this far below Nyquist (poles crowd z = 1).
    sos = sps.butter(4, wn, btype="low", output="sos")
    drift = sps.sosfiltfilt(sos, raw)
    rms = float(np.sqrt(np.mean(drift**2)))
    if rms > 0:
        drift = drift / rms * amplitude_mv
    return drift


def powerline_interference(
    duration_s: float,
    fs_hz: float,
    *,
    mains_hz: float = 60.0,
    amplitude_mv: float = 0.01,
    harmonic_fraction: float = 0.2,
    phase_rad: float = 0.0,
) -> np.ndarray:
    """Mains hum at ``mains_hz`` plus a weaker third harmonic (1-D)."""
    n = _check(duration_s, fs_hz)
    t = np.arange(n) / fs_hz
    fundamental = np.sin(2.0 * np.pi * mains_hz * t + phase_rad)
    harmonic = harmonic_fraction * np.sin(2.0 * np.pi * 3.0 * mains_hz * t + phase_rad)
    return amplitude_mv * (fundamental + harmonic)


def muscle_artifact(
    duration_s: float,
    fs_hz: float,
    *,
    amplitude_mv: float = 0.02,
    band_hz: tuple = (20.0, 120.0),
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """EMG-like 1-D broadband noise in the muscle-activity band.

    The upper band edge is clipped below Nyquist automatically so the model
    also works at low sampling rates.
    """
    n = _check(duration_s, fs_hz)
    rng = rng or np.random.default_rng()
    raw = rng.standard_normal(n)
    nyq = fs_hz / 2.0
    lo = min(max(band_hz[0] / nyq, 1e-6), 0.95)
    hi = min(max(band_hz[1] / nyq, lo + 1e-4), 0.99)
    b, a = sps.butter(2, [lo, hi], btype="band")
    emg = sps.filtfilt(b, a, raw)
    rms = float(np.sqrt(np.mean(emg**2)))
    if rms > 0:
        emg = emg / rms * amplitude_mv
    return emg


def electrode_motion(
    duration_s: float,
    fs_hz: float,
    *,
    events_per_minute: float = 0.5,
    amplitude_mv: float = 0.3,
    decay_s: float = 0.3,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Sparse electrode-motion transients: exponential bumps (1-D)."""
    n = _check(duration_s, fs_hz)
    rng = rng or np.random.default_rng()
    out = np.zeros(n)
    expected = events_per_minute * duration_s / 60.0
    n_events = rng.poisson(expected) if expected > 0 else 0
    tail = int(round(5.0 * decay_s * fs_hz))
    kernel = np.exp(-np.arange(tail) / (decay_s * fs_hz)) if tail > 0 else np.ones(1)
    for _ in range(n_events):
        start = int(rng.integers(0, n))
        sign = 1.0 if rng.uniform() < 0.5 else -1.0
        scale = sign * amplitude_mv * rng.uniform(0.5, 1.0)
        end = min(n, start + kernel.size)
        out[start:end] += scale * kernel[: end - start]
    return out


def white_noise(
    duration_s: float,
    fs_hz: float,
    *,
    amplitude_mv: float = 0.005,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Flat instrumentation noise at the given RMS amplitude (1-D)."""
    n = _check(duration_s, fs_hz)
    rng = rng or np.random.default_rng()
    return amplitude_mv * rng.standard_normal(n)


@dataclass(frozen=True)
class NoiseProfile:
    """A bundle of noise levels applied together to a clean waveform.

    Amplitudes are RMS millivolts except ``motion_amplitude_mv`` (peak).
    Setting a level to zero disables that component.
    """

    baseline_mv: float = 0.04
    powerline_mv: float = 0.005
    muscle_mv: float = 0.01
    white_mv: float = 0.004
    motion_amplitude_mv: float = 0.0
    motion_events_per_minute: float = 0.0
    mains_hz: float = 60.0

    def render(
        self, duration_s: float, fs_hz: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Generate the summed 1-D noise waveform for this profile."""
        n = _check(duration_s, fs_hz)
        total = np.zeros(n)
        if self.baseline_mv > 0:
            total += baseline_wander(
                duration_s, fs_hz, amplitude_mv=self.baseline_mv, rng=rng
            )
        if self.powerline_mv > 0:
            total += powerline_interference(
                duration_s,
                fs_hz,
                mains_hz=self.mains_hz,
                amplitude_mv=self.powerline_mv,
                phase_rad=float(rng.uniform(0.0, 2.0 * np.pi)),
            )
        if self.muscle_mv > 0:
            total += muscle_artifact(
                duration_s, fs_hz, amplitude_mv=self.muscle_mv, rng=rng
            )
        if self.white_mv > 0:
            total += white_noise(
                duration_s, fs_hz, amplitude_mv=self.white_mv, rng=rng
            )
        if self.motion_amplitude_mv > 0 and self.motion_events_per_minute > 0:
            total += electrode_motion(
                duration_s,
                fs_hz,
                events_per_minute=self.motion_events_per_minute,
                amplitude_mv=self.motion_amplitude_mv,
                rng=rng,
            )
        return total

    def scaled(self, factor: float) -> "NoiseProfile":
        """Return a profile with every amplitude multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("factor cannot be negative")
        return NoiseProfile(
            baseline_mv=self.baseline_mv * factor,
            powerline_mv=self.powerline_mv * factor,
            muscle_mv=self.muscle_mv * factor,
            white_mv=self.white_mv * factor,
            motion_amplitude_mv=self.motion_amplitude_mv * factor,
            motion_events_per_minute=self.motion_events_per_minute,
            mains_hz=self.mains_hz,
        )
