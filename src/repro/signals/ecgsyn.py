"""Dynamical-model ECG synthesizer (ECGSYN-style).

The paper evaluates on the MIT-BIH Arrhythmia Database, which is not
redistributable inside this offline environment.  Per the reproduction
plan (DESIGN.md §2) we substitute the database with synthetic ECG generated
by the McSharry-Clifford-Tarassenko dynamical model ("ECGSYN",
*IEEE Trans. Biomed. Eng.* 50(3), 2003), which produces realistic P-QRS-T
morphology with controllable heart-rate variability.  What matters for the
paper's experiments is that the signal is (a) quasi-periodic and wavelet-
compressible like real ECG and (b) quantized the way MIT-BIH is; the model
preserves both.

Three integrators are provided:

* :func:`synthesize_ecg` — the default fast phase-domain integrator.  It
  exploits the model structure: the limit cycle attracts ``(x, y)`` to the
  unit circle, so the phase obeys ``dθ/dt = ω(t)`` exactly on the cycle, and
  the ECG state ``z`` then satisfies a *linear* scalar ODE with time-varying
  forcing which we discretize exactly (exponential integrator, implemented
  as a vectorized IIR filter).

* :func:`synthesize_loop` — the same discretization executed one sample at
  a time in Python.  It is the differential-testing oracle and throughput
  baseline for the array path (the PR-4 pattern of
  ``recover_windows_loop``): the test suite asserts the two are
  bit-identical, and ``BENCH_encode.json`` reports the speedup.

* :func:`integrate_reference` — a faithful RK4 integration of the full
  three-state nonlinear ODE, used as a cross-check in the test suite.

All return the waveform in millivolts; quantization to ADC units happens in
:mod:`repro.signals.database`.

**Backend seam:** the synthesis kernels consume :mod:`repro.backend`
(``_xp`` below is the host reference namespace) instead of importing
numpy/scipy directly; :func:`synthesize_ecg` takes an optional
:class:`~repro.backend.BackendSettings` to run the per-sample kernels —
the Gaussian wave drive and the exponential-integrator IIR — on a fast
backend/precision.  Randomness stays on the host by policy (the RR
tachogram and phase draw are identical for every backend), so a fast
path differs from the exact one only by kernel rounding, which the
differential tests bound.  The oracles (:func:`synthesize_loop`,
:func:`integrate_reference`) are host-float64 by definition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.backend import (
    BackendSettings,
    Generator,
    HOST,
    default_rng,
    ndarray,
    resolve,
)
from repro.perf import lease_workspace, profiled

__backend_seam__ = True

#: Host reference namespace (numpy for the process lifetime); every
#: exact-path computation and all randomness goes through it.
_xp = HOST.xp

__all__ = [
    "EcgMorphology",
    "RRParameters",
    "rr_tachogram",
    "synthesize_ecg",
    "synthesize_loop",
    "integrate_reference",
    "NORMAL_MORPHOLOGY",
    "PVC_MORPHOLOGY",
    "V5_MORPHOLOGY",
    "PVC_V5_MORPHOLOGY",
]


@dataclass(frozen=True)
class EcgMorphology:
    """PQRST morphology parameters of the dynamical model.

    Each of the five waves (P, Q, R, S, T) is a Gaussian bump on the unit
    limit cycle, described by an angular position ``theta_rad``, an
    amplitude coefficient ``a`` and an angular width ``b`` (all arrays of
    equal length, canonically 5).
    """

    theta_rad: Tuple[float, ...]
    a: Tuple[float, ...]
    b: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not len(self.theta_rad) == len(self.a) == len(self.b):
            raise ValueError("theta_rad, a and b must have equal length")
        if len(self.theta_rad) == 0:
            raise ValueError("morphology needs at least one wave")
        if any(w <= 0 for w in self.b):
            raise ValueError("wave widths b must be positive")

    def scaled(self, amplitude: float) -> "EcgMorphology":
        """Return a copy with all wave amplitudes multiplied by a factor."""
        return replace(self, a=tuple(amplitude * ai for ai in self.a))

    def arrays(self) -> Tuple[ndarray, ndarray, ndarray]:
        """The three parameter tuples as host float arrays."""
        return (
            _xp.asarray(self.theta_rad, dtype=float),
            _xp.asarray(self.a, dtype=float),
            _xp.asarray(self.b, dtype=float),
        )


#: Canonical normal-sinus morphology from the ECGSYN paper (Table 1).
NORMAL_MORPHOLOGY = EcgMorphology(
    theta_rad=(-math.pi / 3.0, -math.pi / 12.0, 0.0, math.pi / 12.0, math.pi / 2.0),
    a=(1.2, -5.0, 30.0, -7.5, 0.75),
    b=(0.25, 0.1, 0.1, 0.1, 0.4),
)

#: A wide-QRS, absent-P morphology approximating a premature ventricular
#: contraction; used by the database to give some records ectopic beats.
PVC_MORPHOLOGY = EcgMorphology(
    theta_rad=(-math.pi / 3.0, -math.pi / 9.0, -math.pi / 36.0, math.pi / 7.0, 1.9),
    a=(0.0, -9.0, 22.0, -11.0, -1.8),
    b=(0.25, 0.18, 0.22, 0.18, 0.5),
)

#: A precordial-lead (V5-like) projection of the normal beat: smaller R,
#: deeper S, more prominent T — used as the second channel of two-lead
#: records (MIT-BIH records carry MLII plus a precordial lead).
V5_MORPHOLOGY = EcgMorphology(
    theta_rad=(-math.pi / 3.0, -math.pi / 12.0, 0.0, math.pi / 12.0, math.pi / 2.0),
    a=(0.9, -3.0, 18.0, -10.5, 1.6),
    b=(0.25, 0.1, 0.1, 0.1, 0.45),
)

#: The PVC beat as seen from the V5-like lead.
PVC_V5_MORPHOLOGY = EcgMorphology(
    theta_rad=(-math.pi / 3.0, -math.pi / 9.0, -math.pi / 36.0, math.pi / 7.0, 1.9),
    a=(0.0, -6.0, 15.0, -14.0, -2.4),
    b=(0.25, 0.18, 0.22, 0.18, 0.5),
)


@dataclass(frozen=True)
class RRParameters:
    """Heart-rate-variability parameters for the RR tachogram generator.

    The ECGSYN RR process has a bimodal power spectrum: a low-frequency
    (Mayer wave) Gaussian at ``lf_hz`` and a high-frequency (respiratory
    sinus arrhythmia) Gaussian at ``hf_hz`` with a given LF/HF power ratio.
    """

    mean_hr_bpm: float = 60.0
    std_hr_bpm: float = 1.0
    lf_hz: float = 0.1
    hf_hz: float = 0.25
    lf_std_hz: float = 0.01
    hf_std_hz: float = 0.01
    lf_hf_ratio: float = 0.5

    def __post_init__(self) -> None:
        if self.mean_hr_bpm <= 0:
            raise ValueError("mean heart rate must be positive")
        if self.std_hr_bpm < 0:
            raise ValueError("heart-rate std cannot be negative")
        if self.lf_hf_ratio <= 0:
            raise ValueError("LF/HF ratio must be positive")

    @property
    def mean_rr_s(self) -> float:
        """Mean RR interval in seconds."""
        return 60.0 / self.mean_hr_bpm


def rr_tachogram(
    n_samples: int,
    fs_hz: float,
    params: RRParameters,
    rng: Generator,
) -> ndarray:
    """Generate an RR-interval time series sampled at ``fs_hz``.

    Uses the ECGSYN spectral-synthesis recipe: build the bimodal amplitude
    spectrum, attach uniformly random phases, inverse-FFT, then rescale to
    the requested RR mean and standard deviation.  Host-side by policy —
    randomness never runs on a fast backend, so every backend consumes
    the identical tachogram.

    Returns
    -------
    numpy.ndarray
        RR values in seconds, shape ``(n_samples,)``, strictly positive.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    freqs = _xp.fft.rfftfreq(n_samples, d=1.0 / fs_hz)

    def gaussian(f0: float, sd: float, power: float) -> ndarray:
        return power * _xp.exp(-((freqs - f0) ** 2) / (2.0 * sd**2))

    # Power split between LF and HF bands according to the ratio.
    lf_power = params.lf_hf_ratio / (1.0 + params.lf_hf_ratio)
    hf_power = 1.0 / (1.0 + params.lf_hf_ratio)
    spectrum = gaussian(params.lf_hz, params.lf_std_hz, lf_power) + gaussian(
        params.hf_hz, params.hf_std_hz, hf_power
    )
    amplitude = _xp.sqrt(spectrum)
    phases = rng.uniform(0.0, 2.0 * math.pi, size=amplitude.size)
    # DC and (for even n) Nyquist bins must be real for a real series.
    phases[0] = 0.0
    if n_samples % 2 == 0:
        phases[-1] = 0.0
    series = _xp.fft.irfft(amplitude * _xp.exp(1j * phases), n=n_samples)

    std = float(_xp.std(series))
    mean_rr = params.mean_rr_s
    std_rr = params.std_hr_bpm * 60.0 / params.mean_hr_bpm**2
    if std > 0 and std_rr > 0:
        series = series / std * std_rr
    else:
        series = _xp.zeros(n_samples)
    rr = mean_rr + series
    # Physiological floor: never let an RR interval collapse to <= 0.2 s.
    return _xp.maximum(rr, 0.2)


def _gaussian_wave_drive(
    theta: ndarray,
    omega: ndarray,
    morphology: EcgMorphology,
    xp=_xp,
    dtype=None,
    ws=None,
) -> ndarray:
    """The z-forcing term of the dynamical model at given phases.

    ``-sum_i a_i * dtheta_i * exp(-dtheta_i^2 / (2 b_i^2))`` where
    ``dtheta_i = (theta - theta_i)`` wrapped to ``[-pi, pi)``.  The ``a_i``
    here follow the ECGSYN convention where the drive is additionally scaled
    by the angular velocity (so faster beats are narrower in time, not in
    phase).  ``xp``/``dtype`` select the namespace and precision the bumps
    are evaluated in (host float64 by default — the exact path).  ``ws``
    routes the two ``(n, waves)`` temporaries and the returned drive
    through workspace buffers with the identical operation sequence
    (each step matches the expression form bitwise: commuted scalar
    multiplies, ``x**2`` = ``x*x``, ``(-omega)*s`` = ``-(omega*s)``).
    """
    th, a, b = morphology.arrays()
    if xp is not _xp or dtype is not None:
        th = xp.asarray(th, dtype=dtype)
        a = xp.asarray(a, dtype=dtype)
        b = xp.asarray(b, dtype=dtype)
    if ws is None:
        dtheta = (theta[:, None] - th[None, :] + math.pi) % (2.0 * math.pi) - math.pi
        bumps = a[None, :] * dtheta * xp.exp(-(dtheta**2) / (2.0 * b[None, :] ** 2))
        return -omega * xp.sum(bumps, axis=1)
    n = theta.shape[0]
    waves = th.shape[0]
    dtheta = ws.buf("dtheta", (n, waves))
    xp.subtract(theta[:, None], th[None, :], out=dtheta)
    dtheta += math.pi
    xp.remainder(dtheta, 2.0 * math.pi, out=dtheta)
    dtheta -= math.pi
    expterm = ws.buf("expterm", (n, waves))
    xp.multiply(dtheta, dtheta, out=expterm)
    xp.negative(expterm, out=expterm)
    expterm /= 2.0 * b[None, :] ** 2
    xp.exp(expterm, out=expterm)
    bumps = ws.buf("bumps", (n, waves))
    xp.multiply(a[None, :], dtheta, out=bumps)
    bumps *= expterm
    drive = ws.buf("drive", (n,))
    xp.sum(bumps, axis=1, out=drive)
    drive *= omega
    xp.negative(drive, out=drive)
    return drive


@profiled("signals.ecgsyn")
def synthesize_ecg(
    duration_s: float,
    fs_hz: float = 360.0,
    *,
    morphology: EcgMorphology = NORMAL_MORPHOLOGY,
    rr_params: RRParameters = RRParameters(),
    amplitude_mv: float = 1.0,
    z_baseline_mv: float = 0.0,
    resp_rate_hz: float = 0.25,
    resp_amplitude_mv: float = 0.005,
    seed: Optional[int] = None,
    rng: Optional[Generator] = None,
    settings: Optional[BackendSettings] = None,
) -> ndarray:
    """Synthesize an ECG waveform in millivolts (fast phase-domain path).

    Parameters
    ----------
    duration_s:
        Length of the waveform in seconds.
    fs_hz:
        Output sampling rate (360 Hz matches MIT-BIH).
    morphology:
        PQRST wave parameters; see :data:`NORMAL_MORPHOLOGY`.
    rr_params:
        Heart-rate-variability parameters.
    amplitude_mv:
        Peak R-wave target amplitude in mV (the waveform is rescaled so the
        R peak is approximately this).
    z_baseline_mv:
        Constant baseline offset added after scaling.
    resp_rate_hz, resp_amplitude_mv:
        Respiratory baseline coupling of the model's ``z0(t)`` term.
    seed, rng:
        Randomness control; pass ``rng`` to share a generator, else ``seed``.
        Draws happen on the host for every backend.
    settings:
        Backend/precision for the synthesis kernels (drive + IIR);
        ``None`` or NumPy/float64 is the exact, bit-stable path.

    Returns
    -------
    numpy.ndarray
        Millivolt samples (host float64), shape
        ``(round(duration_s * fs_hz),)``.
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    if fs_hz <= 0:
        raise ValueError("fs_hz must be positive")
    if rng is None:
        rng = default_rng(seed)
    n = int(round(duration_s * fs_hz))
    dt = 1.0 / fs_hz
    backend, xp, dtype, settings = resolve(settings)

    # The integrator state lives in a leased workspace; every buffer is
    # fully overwritten before use and each in-place step is bitwise
    # equal to the expression it replaced, so the loop oracle's
    # bit-identity gate holds unchanged.  Randomness and the exact-path
    # math stay on the host, hence the ``None`` (exact) lease settings.
    with lease_workspace(None, f"ecgsyn:{n}") as ws:
        # RR process, resampled onto the output grid, gives the
        # instantaneous angular velocity omega(t) = 2*pi / RR(t).
        rr = rr_tachogram(n, fs_hz, rr_params, rng)
        omega = ws.buf("omega", (n,))
        _xp.divide(2.0 * math.pi, rr, out=omega)

        # Phase integration: on the limit cycle dtheta/dt = omega exactly.
        theta = ws.buf("theta", (n,))
        theta0 = rng.uniform(-math.pi, math.pi)
        theta[0] = theta0
        if n > 1:
            _xp.cumsum(omega[:-1], out=theta[1:])
            theta[1:] *= dt
            theta[1:] += theta0
        theta += math.pi
        theta %= 2.0 * math.pi
        theta -= math.pi

        # z obeys z' = drive(t) - (z - z0(t)).  Exact discretization of
        # the linear part: z[k+1] = e^{-dt} z[k] + (1 - e^{-dt}) u[k]
        # with u = z0 + drive, implemented as a first-order IIR filter.
        z0 = ws.buf("z0", (n,))
        _xp.multiply(_xp.arange(n), dt, out=z0)
        z0 *= 2.0 * math.pi * resp_rate_hz
        _xp.sin(z0, out=z0)
        z0 *= resp_amplitude_mv
        decay = float(_xp.exp(-dt))
        zi_gain = 1.0 - decay
        if settings.is_exact:
            drive = _gaussian_wave_drive(theta, omega, morphology, ws=ws)
            drive += z0
            z = HOST.first_order_iir(zi_gain, decay, drive)
        else:
            theta_dev = backend.asarray(theta, dtype=dtype)
            omega_dev = backend.asarray(omega, dtype=dtype)
            drive = _gaussian_wave_drive(
                theta_dev, omega_dev, morphology, xp=xp, dtype=dtype
            )
            u = backend.asarray(z0, dtype=dtype) + drive
            z = _xp.asarray(
                backend.to_numpy(backend.first_order_iir(zi_gain, decay, u)),
                dtype=_xp.float64,
            )

    # Rescale so the R peak sits near amplitude_mv (z is the filter's
    # own fresh output, so nothing leased escapes the block above).
    peak = float(_xp.max(_xp.abs(z)))
    if peak > 0:
        z = z * (amplitude_mv / peak)
    return z + z_baseline_mv


def synthesize_loop(
    duration_s: float,
    fs_hz: float = 360.0,
    *,
    morphology: EcgMorphology = NORMAL_MORPHOLOGY,
    rr_params: RRParameters = RRParameters(),
    amplitude_mv: float = 1.0,
    z_baseline_mv: float = 0.0,
    resp_rate_hz: float = 0.25,
    resp_amplitude_mv: float = 0.005,
    seed: Optional[int] = None,
    rng: Optional[Generator] = None,
) -> ndarray:
    """Per-sample scalar oracle for :func:`synthesize_ecg`.

    Same model, same randomness, same discretization — but the phase
    accumulation, forcing evaluation and exponential-integrator update
    run one sample at a time in Python.  The output is **bit-identical**
    to the vectorized path at default (exact) backend settings: the
    accumulations it unrolls (``cumsum``, the 5-wave bump sum, the
    first-order IIR) match numpy's sequential semantics exactly, and
    numpy's elementwise transcendentals are length-independent.  Kept as
    the differential-testing oracle — for the fast backends too, which
    is why it takes no backend settings — and as the throughput baseline
    of the synthesis microbenchmark.
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    if fs_hz <= 0:
        raise ValueError("fs_hz must be positive")
    if rng is None:
        rng = default_rng(seed)
    n = int(round(duration_s * fs_hz))
    dt = 1.0 / fs_hz

    # Identical RNG draw order to synthesize_ecg: tachogram, then theta0.
    rr = rr_tachogram(n, fs_hz, rr_params, rng)
    omega = 2.0 * math.pi / rr
    theta0 = rng.uniform(-math.pi, math.pi)

    theta = _xp.empty(n)
    accumulated = omega.dtype.type(0.0)
    theta[0] = (theta0 + math.pi) % (2.0 * math.pi) - math.pi
    for k in range(1, n):
        accumulated = accumulated + omega[k - 1]
        theta[k] = (theta0 + accumulated * dt + math.pi) % (2.0 * math.pi) - math.pi

    decay = float(_xp.exp(-dt))
    zi_gain = 1.0 - decay
    two_pi_resp = 2.0 * math.pi * resp_rate_hz
    z = _xp.empty(n)
    state = 0.0
    for k in range(n):
        z0_k = resp_amplitude_mv * _xp.sin(two_pi_resp * (_xp.float64(k) * dt))
        drive_k = _gaussian_wave_drive(
            theta[k : k + 1], omega[k : k + 1], morphology
        )[0]
        u_k = z0_k + drive_k
        y_k = zi_gain * u_k + state
        state = decay * y_k
        z[k] = y_k

    peak = float(_xp.max(_xp.abs(z)))
    if peak > 0:
        z = z * (amplitude_mv / peak)
    return z + z_baseline_mv


def integrate_reference(
    duration_s: float,
    fs_hz: float = 360.0,
    *,
    morphology: EcgMorphology = NORMAL_MORPHOLOGY,
    mean_hr_bpm: float = 60.0,
    amplitude_mv: float = 1.0,
    oversample: int = 2,
    warmup_s: float = 3.0,
) -> ndarray:
    """Reference RK4 integration of the full three-state ECGSYN ODE.

    Deterministic (fixed heart rate, no HRV) and slow; exists so the test
    suite can validate the fast phase-domain integrator against the genuine
    dynamical system.  A warm-up interval is integrated and discarded so
    the returned waveform starts on the settled limit cycle.  Returns the 1-D
    waveform in millivolts.
    """
    if duration_s <= 0 or fs_hz <= 0:
        raise ValueError("duration and sampling rate must be positive")
    if oversample < 1:
        raise ValueError("oversample must be >= 1")
    if warmup_s < 0:
        raise ValueError("warmup cannot be negative")
    th, a, b = morphology.arrays()
    omega = 2.0 * math.pi * mean_hr_bpm / 60.0

    def rhs(state: ndarray) -> ndarray:
        x, y, z = state
        alpha = 1.0 - _xp.hypot(x, y)
        theta = _xp.arctan2(y, x)
        dtheta = (theta - th + math.pi) % (2.0 * math.pi) - math.pi
        dz = -float(
            _xp.sum(a * omega * dtheta * _xp.exp(-(dtheta**2) / (2.0 * b**2)))
        ) - z
        return _xp.array([alpha * x - omega * y, alpha * y + omega * x, dz])

    n_out = int(round(duration_s * fs_hz))
    n_warm = int(round(warmup_s * fs_hz))
    h = 1.0 / (fs_hz * oversample)
    # Start at theta = -pi on the unit circle (beginning of a cycle).
    state = _xp.array([-1.0, 0.0, 0.0])
    out = _xp.empty(n_out)
    for k in range(n_warm + n_out):
        if k >= n_warm:
            out[k - n_warm] = state[2]
        for _ in range(oversample):
            k1 = rhs(state)
            k2 = rhs(state + 0.5 * h * k1)
            k3 = rhs(state + 0.5 * h * k2)
            k4 = rhs(state + h * k3)
            state = state + (h / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
    out = out - float(_xp.mean(out))
    peak = float(_xp.max(_xp.abs(out)))
    if peak > 0:
        out = out * (amplitude_mv / peak)
    return out
