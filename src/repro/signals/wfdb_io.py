"""Minimal WFDB-compatible record I/O (MIT-BIH format 212).

The paper evaluates on the MIT-BIH Arrhythmia Database, distributed in the
WFDB format: a text header (``<record>.hea``) plus a packed binary signal
file (``<record>.dat``, format 212 = two 12-bit samples in three bytes).
This module implements enough of that format to

* **read** real MIT-BIH records if the user drops the PhysioNet files next
  to this package (the reproduction then runs on the genuine data), and
* **write** our synthetic records in the same format, so external WFDB
  tooling can inspect them.

Only single- and dual-signal format-212 records are supported — exactly
what the MIT-BIH Arrhythmia Database uses.  No network access, no WFDB
library dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro.signals.records import Record, RecordHeader

__all__ = [
    "WfdbSignalInfo",
    "read_header",
    "read_record",
    "write_record",
    "write_record_pair",
    "pack_212",
    "unpack_212",
]


@dataclass(frozen=True)
class WfdbSignalInfo:
    """One signal line of a WFDB header."""

    file_name: str
    fmt: int
    adc_gain: float
    adc_resolution: int
    adc_zero: int
    initial_value: int
    description: str


def pack_212(samples: np.ndarray) -> bytes:
    """Pack 12-bit two's-complement samples into WFDB format 212.

    Two samples ``a, b`` become three bytes::

        byte0 = a[7:0]
        byte1 = b[11:8] << 4 | a[11:8]
        byte2 = b[7:0]

    An odd trailing sample is padded with a zero sample (standard
    behaviour; the header's sample count disambiguates).
    """
    arr = np.asarray(samples)
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError("format 212 packs integer samples")
    if arr.size and (arr.min() < -2048 or arr.max() > 2047):
        raise ValueError("format 212 holds 12-bit samples (-2048..2047)")
    vals = arr.astype(np.int64)
    if vals.size % 2:
        vals = np.concatenate([vals, [0]])
    # Two's complement to 12-bit unsigned.
    u = np.where(vals < 0, vals + 4096, vals).astype(np.uint16)
    a = u[0::2]
    b = u[1::2]
    out = np.empty(3 * a.size, dtype=np.uint8)
    out[0::3] = a & 0xFF
    out[1::3] = ((b >> 8) << 4) | (a >> 8)
    out[2::3] = b & 0xFF
    return out.tobytes()


def unpack_212(data: bytes, n_samples: int) -> np.ndarray:
    """Inverse of :func:`pack_212`: the first ``n_samples`` samples, 1-D."""
    if n_samples < 0:
        raise ValueError("n_samples cannot be negative")
    raw = np.frombuffer(data, dtype=np.uint8)
    if raw.size % 3:
        raise ValueError("format 212 payload length must be a multiple of 3")
    pairs = raw.size // 3
    if n_samples > 2 * pairs:
        raise ValueError("payload holds fewer samples than requested")
    b0 = raw[0::3].astype(np.int64)
    b1 = raw[1::3].astype(np.int64)
    b2 = raw[2::3].astype(np.int64)
    a = ((b1 & 0x0F) << 8) | b0
    b = ((b1 >> 4) << 8) | b2
    out = np.empty(2 * pairs, dtype=np.int64)
    out[0::2] = a
    out[1::2] = b
    out = np.where(out > 2047, out - 4096, out)
    return out[:n_samples]


def _parse_header_text(text: str) -> Tuple[str, int, float, int, List[WfdbSignalInfo]]:
    lines = [
        ln.strip()
        for ln in text.splitlines()
        if ln.strip() and not ln.startswith("#")
    ]
    if not lines:
        raise ValueError("empty WFDB header")
    head = lines[0].split()
    if len(head) < 3:
        raise ValueError("malformed WFDB record line")
    record_name = head[0]
    n_signals = int(head[1])
    fs = float(head[2])
    n_samples = int(head[3]) if len(head) > 3 else 0
    signals = []
    for ln in lines[1 : 1 + n_signals]:
        parts = ln.split()
        if len(parts) < 2:
            raise ValueError(f"malformed signal line: {ln!r}")
        file_name = parts[0]
        fmt = int(parts[1].split("x")[0].split(":")[0].split("+")[0])
        # gain may carry "(baseline)/units" decorations: 200(1024)/mV
        gain_field = parts[2] if len(parts) > 2 else "200"
        gain_str = gain_field.split("/")[0]
        if "(" in gain_str:
            gain, baseline = gain_str.split("(")
            adc_zero = int(baseline.rstrip(")"))
            adc_gain = float(gain)
        else:
            adc_gain = float(gain_str)
            adc_zero = int(parts[4]) if len(parts) > 4 else 0
        adc_res = int(parts[3]) if len(parts) > 3 else 12
        if "(" not in gain_str and len(parts) > 4:
            adc_zero = int(parts[4])
        initial = int(parts[5]) if len(parts) > 5 else adc_zero
        description = " ".join(parts[8:]) if len(parts) > 8 else f"sig{len(signals)}"
        signals.append(
            WfdbSignalInfo(
                file_name=file_name,
                fmt=fmt,
                adc_gain=adc_gain,
                adc_resolution=adc_res,
                adc_zero=adc_zero,
                initial_value=initial,
                description=description,
            )
        )
    return record_name, n_samples, fs, n_signals, signals


def read_header(path: Path) -> Tuple[str, int, float, List[WfdbSignalInfo]]:
    """Parse a ``.hea`` file: (record name, samples/signal, fs, signals)."""
    text = Path(path).read_text()
    name, n_samples, fs, _, signals = _parse_header_text(text)
    return name, n_samples, fs, signals


def read_record(
    header_path: Path, *, channel: int = 0, name: Optional[str] = None
) -> Record:
    """Load one channel of a format-212 WFDB record as a :class:`Record`.

    Parameters
    ----------
    header_path:
        Path to the ``.hea`` file; the ``.dat`` is resolved from the
        signal line, relative to the header's directory.
    channel:
        Which signal to extract (MIT-BIH records have two; the paper uses
        the first, MLII).
    name:
        Override the record name (defaults to the header's).
    """
    header_path = Path(header_path)
    rec_name, n_samples, fs, signals = read_header(header_path)
    if not 0 <= channel < len(signals):
        raise ValueError(f"record has {len(signals)} signals; channel {channel} invalid")
    for info in signals:
        if info.fmt != 212:
            raise ValueError(f"only format 212 is supported, got {info.fmt}")
    dat_path = header_path.parent / signals[channel].file_name
    data = dat_path.read_bytes()
    interleaved = unpack_212(data, n_samples * len(signals))
    chan = interleaved[channel :: len(signals)]

    info = signals[channel]
    # WFDB samples are signed around adc_zero; Record stores unsigned ADU.
    bits = info.adc_resolution if info.adc_resolution > 0 else 12
    header = RecordHeader(
        fs_hz=fs,
        resolution_bits=min(bits, 12),
        adc_gain=info.adc_gain,
        adc_zero=info.adc_zero,
        lead=info.description or "sig",
    )
    adu = np.clip(chan, 0, header.adc_levels - 1).astype(np.int64)
    return Record(name=name or rec_name, adu=adu, header=header)


def write_record(record: Record, directory: Path) -> Tuple[Path, Path]:
    """Write a :class:`Record` as a single-signal format-212 WFDB pair.

    Returns the ``(.hea, .dat)`` paths.  Samples are stored as raw ADU
    (consistent with how MIT-BIH stores its unsigned 11-bit codes inside
    the 12-bit container).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    hea_path = directory / f"{record.name}.hea"
    dat_path = directory / f"{record.name}.dat"

    samples = record.adu.astype(np.int64)
    if samples.max() > 2047:
        raise ValueError("record does not fit in a 12-bit format-212 container")
    dat_path.write_bytes(pack_212(samples))

    h = record.header
    initial = int(samples[0])
    header_text = (
        f"{record.name} 1 {h.fs_hz:g} {len(record)}\n"
        f"{dat_path.name} 212 {h.adc_gain:g}({h.adc_zero})/mV "
        f"{h.resolution_bits} {h.adc_zero} {initial} 0 0 {h.lead}\n"
        f"# written by repro.signals.wfdb_io\n"
    )
    hea_path.write_text(header_text)
    return hea_path, dat_path


def write_record_pair(
    first: Record, second: Record, directory: Path
) -> Tuple[Path, Path]:
    """Write two sample-aligned leads as one 2-signal format-212 record.

    This matches the layout of the real MIT-BIH files (two interleaved
    signals in one ``.dat``); either channel loads back with
    :func:`read_record`'s ``channel`` argument.
    """
    if first.name != second.name:
        raise ValueError("both leads must belong to the same record")
    if len(first) != len(second):
        raise ValueError("leads must be sample-aligned (equal length)")
    if first.header.fs_hz != second.header.fs_hz:
        raise ValueError("leads must share the sampling rate")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    hea_path = directory / f"{first.name}.hea"
    dat_path = directory / f"{first.name}.dat"

    a = first.adu.astype(np.int64)
    b = second.adu.astype(np.int64)
    if max(int(a.max()), int(b.max())) > 2047:
        raise ValueError("records do not fit in a 12-bit format-212 container")
    interleaved = np.empty(2 * a.size, dtype=np.int64)
    interleaved[0::2] = a
    interleaved[1::2] = b
    dat_path.write_bytes(pack_212(interleaved))

    def signal_line(record: Record) -> str:
        h = record.header
        return (
            f"{dat_path.name} 212 {h.adc_gain:g}({h.adc_zero})/mV "
            f"{h.resolution_bits} {h.adc_zero} {int(record.adu[0])} 0 0 "
            f"{h.lead}"
        )

    header_text = (
        f"{first.name} 2 {first.header.fs_hz:g} {len(first)}\n"
        f"{signal_line(first)}\n"
        f"{signal_line(second)}\n"
        f"# written by repro.signals.wfdb_io\n"
    )
    hea_path.write_text(header_text)
    return hea_path, dat_path
