"""The four pipeline stages and the per-process state they share.

The end-to-end flow the experiment drivers used to hand-roll is an
explicit stage graph over :class:`~repro.runtime.task.WindowTask` units:

* :func:`encode`    — node side: CS measure + low-res code + frame
  (:func:`encode_batch` runs a stack of same-link windows through the
  batched encode engine with bit-identical output);
* :func:`transport` — the radio link (identity today; the seeded hook
  where lossy-link models plug in);
* :func:`recover`   — receiver side: decode + Eq. 1 / BPDN solve;
* :func:`score`     — PRD/SNR/bit accounting against the reference.

:func:`execute_window_task` composes them and is the function executors
ship to workers.  Front-end/receiver pairs are deterministic functions of
``(config, method, codebook)``, so each process memoizes them in
:func:`link_for` — a worker pays the Φ/Ψ construction cost once per
distinct config, not once per window.

Below the link memo sits the process-wide operator cache
(:data:`repro.recovery.opcache.PROBLEM_CACHE`): every receiver built
here pulls its :class:`~repro.recovery.problem.CsProblem` from it (when
``config.recovery.cache_problems`` is on), so links that differ only in
method or codebook — e.g. the hybrid and normal arms of one sweep cell —
share a single ΦΨ composition and its factorizations.
:func:`recovery_cache_stats` exposes both layers' hit accounting for the
benchmarks.
"""

from __future__ import annotations

from collections import OrderedDict
from functools import lru_cache
from typing import List, NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import FrontEndConfig
from repro.core.frontend import HybridFrontEnd, NormalCsFrontEnd
from repro.core.outcomes import WindowOutcome
from repro.core.packets import WindowPacket
from repro.core.receiver import HybridReceiver, WindowReconstruction
from repro.metrics.quality import prd as prd_metric
from repro.recovery.methods import resolve_method
from repro.runtime.task import CodebookSpec, WindowTask

__all__ = [
    "STAGE_NAMES",
    "Link",
    "link_for",
    "link_for_params",
    "recovery_cache_stats",
    "reference_centered",
    "encode",
    "encode_batch",
    "transport",
    "recover",
    "score",
    "execute_window_task",
]

#: Stage order of the engine's graph.
STAGE_NAMES: Tuple[str, ...] = ("encode", "transport", "recover", "score")

#: SNR is clipped here (dB) so a perfect window does not propagate inf.
_SNR_CEILING_DB = 120.0


class Link(NamedTuple):
    """A matched transmitter/receiver pair built from one config."""

    frontend: Union[HybridFrontEnd, NormalCsFrontEnd]
    receiver: HybridReceiver


def _build_link(
    config: FrontEndConfig, method: str, spec: CodebookSpec
) -> Link:
    mspec = resolve_method(method)
    codebook = spec.resolve()
    if mspec.uses_lowres:
        if codebook is None:
            raise ValueError(f"method {method!r} tasks need a codebook spec")
        return Link(
            frontend=HybridFrontEnd(config, codebook),
            receiver=HybridReceiver(config, codebook, method=method),
        )
    return Link(
        frontend=NormalCsFrontEnd(config),
        receiver=HybridReceiver(config, method=method),
    )


@lru_cache(maxsize=16)
def _cached_link(
    config: FrontEndConfig, method: str, spec: CodebookSpec
) -> Link:
    return _build_link(config, method, spec)


#: Small memo for inline-codebook links, keyed by object identity (an
#: inline codebook is not hashable).  Values keep the codebook alive so
#: the id cannot be recycled while the entry exists.
_INLINE_LINKS: "OrderedDict[Tuple[FrontEndConfig, str, int], Tuple[CodebookSpec, Link]]" = (
    OrderedDict()
)
_INLINE_LINKS_MAX = 8


def link_for_params(
    config: FrontEndConfig, method: str, spec: CodebookSpec
) -> Link:
    """The per-process front-end/receiver pair for explicit parameters.

    This is the memoization point shared by the batch stage graph
    (:func:`link_for`) and the streaming recovery workers
    (:func:`repro.stream.session.execute_recovery_task`): any process
    pays the Φ/Ψ construction cost once per distinct
    ``(config, method, codebook)`` triple.
    """
    if spec.is_hashable:
        return _cached_link(config, method, spec)
    key = (config, method, id(spec.inline))
    hit = _INLINE_LINKS.get(key)
    if hit is not None:
        _INLINE_LINKS.move_to_end(key)
        return hit[1]
    link = _build_link(config, method, spec)
    _INLINE_LINKS[key] = (spec, link)
    while len(_INLINE_LINKS) > _INLINE_LINKS_MAX:
        _INLINE_LINKS.popitem(last=False)
    return link


def link_for(task: WindowTask) -> Link:
    """The per-process front-end/receiver pair for a task's parameters."""
    return link_for_params(task.config, task.method, task.codebook)


def recovery_cache_stats() -> dict:
    """Hit accounting for this process's receiver-side caches.

    Combines the operator cache (shared ΦΨ compositions and their
    factorizations, including the per-``(backend, precision)`` operator
    sets of the array-backend seam) with the sizes of both link memos;
    the solver microbenchmark records this alongside its timings so
    cache effectiveness is visible in ``BENCH_solvers.json``.
    """
    from repro.recovery.opcache import PROBLEM_CACHE

    info = _cached_link.cache_info()
    stats = dict(PROBLEM_CACHE.stats())
    stats["link_cache_size"] = info.currsize
    stats["inline_link_cache_size"] = len(_INLINE_LINKS)
    return stats


def reference_centered(codes: np.ndarray, center: int) -> np.ndarray:
    """Baseline-centered reference signal, shape ``(n,)`` float.

    Uses :func:`numpy.asarray` so an already-float input is centered
    without the redundant ``astype`` copy the old pipeline paid.
    """
    return np.asarray(codes, dtype=float) - center


def encode(task: WindowTask, link: Optional[Link] = None) -> WindowPacket:
    """Node stage: acquire and frame one window of acquisition codes."""
    link = link or link_for(task)
    return link.frontend.process_window(task.codes, task.window_index)


def encode_batch(
    tasks: Sequence[WindowTask], link: Optional[Link] = None
) -> List[WindowPacket]:
    """Node stage over a batch: one engine call for several windows.

    All tasks must share one link (same ``config``/``method``/codebook) —
    the batch is a stack of windows through a single front-end.  Output
    is bit-identical to mapping :func:`encode` over the tasks (see
    ``docs/encoding.md``) at the default exact ``config.backend``; when
    ``config.encode.batched`` is off the scalar map is exactly what
    runs.  A fast ``config.backend`` (e.g. float32) threads through the
    front-end's measurement GEMM here, with its boundary guard still
    verified in float64 (``docs/backends.md``).
    """
    if not tasks:
        return []
    first = tasks[0]
    for task in tasks[1:]:
        if (
            task.config != first.config
            or task.method != first.method
            or task.codebook != first.codebook
        ):
            raise ValueError("encode_batch tasks must share one link")
    link = link or link_for(first)
    if not first.config.encode.batched or len(tasks) == 1:
        return [encode(task, link) for task in tasks]
    return link.frontend.encode_windows(
        np.stack([task.codes for task in tasks]),
        indices=[task.window_index for task in tasks],
    )


def transport(packet: WindowPacket, task: WindowTask) -> WindowPacket:
    """Link stage: deliver the packet to the receiver.

    An ideal channel today — the packet passes through unchanged.  This
    is the seam for channel impairment models: a lossy variant would
    draw from ``np.random.default_rng(task.seed)`` so drops/corruption
    are reproducible regardless of which worker runs the task.
    """
    del task  # identity channel; the seed is reserved for lossy models
    return packet


def recover(
    packet: WindowPacket, task: WindowTask, link: Optional[Link] = None
) -> WindowReconstruction:
    """Receiver stage: decode the packet and solve the convex program."""
    link = link or link_for(task)
    return link.receiver.reconstruct(packet)


def score(
    task: WindowTask, packet: WindowPacket, recon: WindowReconstruction
) -> WindowOutcome:
    """Metrics stage: PRD/SNR against the baseline-centered reference."""
    center = 1 << (task.config.acquisition_bits - 1)
    reference = reference_centered(task.codes, center)
    p = prd_metric(reference, recon.x_centered(center))
    snr = float("inf") if p == 0 else -20.0 * np.log10(0.01 * p)
    return WindowOutcome(
        window_index=task.window_index,
        prd_percent=p,
        snr_db=min(snr, _SNR_CEILING_DB),
        budget=packet.budget(),
        solver_iterations=recon.recovery.iterations,
        solver_converged=recon.recovery.converged,
    )


def execute_window_task(task: WindowTask) -> WindowOutcome:
    """Run one task through the full stage graph.

    This is the executor worker function: pure in ``task`` (given the
    deterministic synthetic database), so any process computing the same
    task produces a bit-identical :class:`WindowOutcome`.
    """
    link = link_for(task)
    packet = encode(task, link)
    packet = transport(packet, task)
    recon = recover(packet, task, link)
    return score(task, packet, recon)
