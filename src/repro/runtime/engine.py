"""The staged execution engine: jobs → window tasks → record outcomes.

:class:`RecordJob` is the record-level request the old ``run_record``
signature used to express implicitly; :class:`ExecutionEngine` expands
jobs into window-level :class:`~repro.runtime.task.WindowTask` units,
schedules them through one pluggable
:class:`~repro.runtime.executors.Executor`, and reassembles
:class:`~repro.core.outcomes.RecordOutcome` aggregates in job order.

Because *all* jobs are flattened into one task batch, a sweep's whole
record × CR × method grid parallelises at window granularity — the
executor never idles at record boundaries.

:class:`StageHook` is the scheduling seam: before a job is expanded the
engine offers it to each hook (``lookup``), and a hook that returns an
outcome — e.g. the disk cache via
:class:`repro.experiments.cache.SweepCacheHook` — short-circuits the job
entirely, so cache hits skip task creation, pickling and scheduling.
Completed jobs are offered back (``store``) for persistence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.codebooks import CodebookKey
from repro.core.config import FrontEndConfig
from repro.core.outcomes import RecordOutcome
from repro.recovery.methods import resolve_method
from repro.runtime.executors import Executor, SerialExecutor
from repro.runtime.stages import STAGE_NAMES
from repro.runtime.task import CodebookSpec, WindowTask, task_seed
from repro.signals.records import Record

__all__ = ["RecordJob", "StageHook", "ExecutionEngine"]

# Re-exported so engine users can introspect the graph without importing
# the stages module.
assert STAGE_NAMES == ("encode", "transport", "recover", "score")


@dataclass(frozen=True)
class RecordJob:
    """One record through one method under one config.

    Attributes
    ----------
    record:
        The input record (window source and reference signal).
    config:
        Shared link configuration.
    method:
        A registered recovery-method name (see
        :func:`repro.recovery.methods.method_names`).
    codebook:
        Optional codebook spec.  ``None`` means "use the default trained
        codebook" for methods that consume the low-res path and "no
        codebook" for measurements-only methods.
    max_windows:
        Cap on processed windows (None = all full windows).
    """

    record: Record
    config: FrontEndConfig
    method: str = "hybrid"
    codebook: Optional[CodebookSpec] = None
    max_windows: Optional[int] = None

    def __post_init__(self) -> None:
        resolve_method(self.method)
        if self.max_windows is not None and self.max_windows < 1:
            raise ValueError("max_windows must be positive when given")

    def resolved_codebook_spec(self) -> CodebookSpec:
        """The concrete codebook spec this job's tasks will carry."""
        if not resolve_method(self.method).uses_lowres:
            return CodebookSpec.none()
        if self.codebook is not None:
            return self.codebook
        return CodebookSpec.default(
            CodebookKey(
                lowres_bits=self.config.lowres_bits,
                acquisition_bits=self.config.acquisition_bits,
            )
        )


class StageHook:
    """Observer/short-circuit interface around job scheduling.

    Subclass and override either method; the defaults are inert.  Hooks
    run in the parent process only — workers never see them — so they
    may hold unpicklable state (open files, counters, sockets).
    """

    def lookup(self, job: RecordJob) -> Optional[RecordOutcome]:
        """Return a finished outcome to skip scheduling ``job`` entirely."""
        del job
        return None

    def store(self, job: RecordJob, outcome: RecordOutcome) -> None:
        """Observe a freshly computed outcome (e.g. persist it)."""
        del job, outcome


class ExecutionEngine:
    """Schedules record jobs through the stage graph on one executor.

    Parameters
    ----------
    executor:
        Task executor; defaults to :class:`SerialExecutor`, which is
        bit-identical to the historical in-process pipeline.
    hooks:
        Stage hooks consulted per job (first ``lookup`` hit wins).
    """

    def __init__(
        self,
        executor: Optional[Executor] = None,
        hooks: Sequence[StageHook] = (),
    ) -> None:
        self.executor = executor or SerialExecutor()
        self.hooks: Tuple[StageHook, ...] = tuple(hooks)

    def plan(self, job: RecordJob) -> List[WindowTask]:
        """Expand one job into its ordered window tasks.

        Raises if the record is shorter than one window — the same
        contract ``run_record`` has always had.
        """
        spec = job.resolved_codebook_spec()
        config = job.config
        tasks: List[WindowTask] = []
        for idx, window in enumerate(job.record.windows(config.window_len)):
            if job.max_windows is not None and idx >= job.max_windows:
                break
            tasks.append(
                WindowTask(
                    record_name=job.record.name,
                    method=job.method,
                    window_index=idx,
                    codes=window,
                    config=config,
                    codebook=spec,
                    seed=task_seed(job.record.name, job.method, idx),
                )
            )
        if not tasks:
            raise ValueError(
                f"record {job.record.name} is shorter than one "
                f"{config.window_len}-sample window"
            )
        return tasks

    def _lookup(self, job: RecordJob) -> Optional[RecordOutcome]:
        for hook in self.hooks:
            outcome = hook.lookup(job)
            if outcome is not None:
                return outcome
        return None

    def _warm_default_codebooks(self, tasks: Sequence[WindowTask]) -> None:
        """Resolve every distinct default-codebook key in the parent.

        Training is deterministic, so this is purely a warm-up: on
        fork-based platforms workers inherit the parent's cache and skip
        retraining entirely; on spawn platforms each worker trains once
        per key and caches thereafter.
        """
        seen = set()
        for task in tasks:
            spec = task.codebook
            if spec.kind == "default" and spec.key not in seen:
                seen.add(spec.key)
                spec.resolve()

    def run_jobs(self, jobs: Sequence[RecordJob]) -> List[RecordOutcome]:
        """Run every job; outcome ``i`` corresponds to job ``i``.

        Cache-hook hits are filled in without scheduling; every other
        job's windows are flattened into one executor batch so the pool
        sees maximal window-level parallelism.
        """
        jobs = list(jobs)
        results: List[Optional[RecordOutcome]] = [None] * len(jobs)
        pending: List[Tuple[int, RecordJob, List[WindowTask]]] = []
        for i, job in enumerate(jobs):
            hit = self._lookup(job)
            if hit is not None:
                results[i] = hit
                continue
            pending.append((i, job, self.plan(job)))

        flat: List[WindowTask] = [t for _, _, ts in pending for t in ts]
        if flat:
            self._warm_default_codebooks(flat)
            window_outcomes = self.executor.run_tasks(flat)
            cursor = 0
            for i, job, tasks in pending:
                windows = tuple(window_outcomes[cursor : cursor + len(tasks)])
                cursor += len(tasks)
                outcome = RecordOutcome(
                    record_name=job.record.name,
                    method=job.method,
                    windows=windows,
                )
                for hook in self.hooks:
                    hook.store(job, outcome)
                results[i] = outcome
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def run_job(self, job: RecordJob) -> RecordOutcome:
        """Convenience wrapper: run a single job."""
        return self.run_jobs([job])[0]
