"""Pluggable executors: how window tasks are mapped to outcomes.

Two implementations of one contract (:class:`Executor.run_tasks`:
ordered, one outcome per task):

* :class:`SerialExecutor` — in-process loop, bit-identical to the
  pre-engine pipeline; the default everywhere, and what every paper
  invariant test runs through.
* :class:`ParallelExecutor` — a ``ProcessPoolExecutor`` fan-out with
  bounded in-flight submission.  Window solves are pure functions of the
  task payload, so results are bit-identical to serial execution, just
  computed on more cores.  Submission is bounded (default
  ``4 × workers`` outstanding futures) so a 48-record × 9-CR × 2-method
  grid never materialises thousands of pickled pending futures at once.
"""

from __future__ import annotations

import concurrent.futures
import os
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

from repro.core.outcomes import WindowOutcome
from repro.runtime.stages import execute_window_task
from repro.runtime.task import WindowTask

__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "executor_from_workers",
]


class Executor(ABC):
    """Maps window tasks to outcomes, preserving input order."""

    #: Human-readable executor name (benchmark artifacts record it).
    name: str = "executor"

    @abstractmethod
    def run_tasks(self, tasks: Sequence[WindowTask]) -> List[WindowOutcome]:
        """Execute every task; outcome ``i`` corresponds to task ``i``."""

    @property
    def effective_workers(self) -> int:
        """How many processes actually compute (1 for serial)."""
        return 1


class SerialExecutor(Executor):
    """Run every task in-process, in order — the deterministic default."""

    name = "serial"

    def run_tasks(self, tasks: Sequence[WindowTask]) -> List[WindowOutcome]:
        """Execute tasks one by one; outcome order matches task order."""
        return [execute_window_task(task) for task in tasks]


class ParallelExecutor(Executor):
    """Fan tasks out over worker processes with bounded submission.

    Parameters
    ----------
    workers:
        Worker process count (default: the machine's CPU count).
    max_inflight:
        Cap on outstanding submitted futures (default ``4 × workers``);
        bounds both scheduler memory and pickled-payload backlog.

    Determinism: each worker rebuilds front-end/receiver state from the
    task payload via per-process caches, and every solve is a pure
    function of the task, so outcomes are bit-identical to
    :class:`SerialExecutor` regardless of scheduling order.
    """

    name = "parallel"

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        max_inflight: Optional[int] = None,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.workers = int(workers)
        self.max_inflight = (
            int(max_inflight) if max_inflight is not None else 4 * self.workers
        )

    @property
    def effective_workers(self) -> int:
        """The configured worker-process count."""
        return self.workers

    def run_tasks(self, tasks: Sequence[WindowTask]) -> List[WindowOutcome]:
        """Execute tasks across the pool; outcome order matches task order."""
        tasks = list(tasks)
        if len(tasks) <= 1 or self.workers == 1:
            # Not worth a pool; also keeps the single-task path trivially
            # debuggable.
            return SerialExecutor().run_tasks(tasks)
        results: List[Optional[WindowOutcome]] = [None] * len(tasks)
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers
        ) as pool:
            pending = {}
            task_iter = iter(enumerate(tasks))
            exhausted = False
            while pending or not exhausted:
                while not exhausted and len(pending) < self.max_inflight:
                    try:
                        index, task = next(task_iter)
                    except StopIteration:
                        exhausted = True
                        break
                    pending[pool.submit(execute_window_task, task)] = index
                if not pending:
                    break
                done, _ = concurrent.futures.wait(
                    pending, return_when=concurrent.futures.FIRST_COMPLETED
                )
                for future in done:
                    index = pending.pop(future)
                    results[index] = future.result()
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]


def executor_from_workers(workers: Optional[int]) -> Executor:
    """Executor for a ``--workers N`` style knob.

    ``None``, ``0`` or ``1`` select the serial executor; anything larger
    selects a parallel executor with that many processes.
    """
    if workers is None or workers <= 1:
        return SerialExecutor()
    return ParallelExecutor(workers=workers)
