"""Pluggable executors: how window tasks are mapped to outcomes.

Two implementations of one contract (:class:`Executor.run_tasks`:
ordered, one outcome per task):

* :class:`SerialExecutor` — in-process loop, bit-identical to the
  pre-engine pipeline; the default everywhere, and what every paper
  invariant test runs through.
* :class:`ParallelExecutor` — a ``ProcessPoolExecutor`` fan-out with
  bounded in-flight submission.  Window solves are pure functions of the
  task payload, so results are bit-identical to serial execution, just
  computed on more cores.  Submission is bounded (default
  ``4 × workers`` outstanding futures) so a 48-record × 9-CR × 2-method
  grid never materialises thousands of pickled pending futures at once.

The task function defaults to the batch pipeline's
:func:`~repro.runtime.stages.execute_window_task` but any module-level
(picklable) pure function can be fanned out — the streaming gateway
(:mod:`repro.stream`) ships its per-window recovery solves through the
same executors with ``fn=execute_recovery_task``.
"""

from __future__ import annotations

import concurrent.futures
import os
from abc import ABC, abstractmethod
from typing import Any, Callable, List, Optional, Sequence

from repro.runtime.stages import execute_window_task

__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "executor_from_workers",
    "resolve_worker_count",
]


class Executor(ABC):
    """Maps task units to results, preserving input order.

    Tasks are opaque picklable values; ``fn`` is the pure function that
    turns one task into one result (default: the batch stage graph's
    :func:`~repro.runtime.stages.execute_window_task`).
    """

    #: Human-readable executor name (benchmark artifacts record it).
    name: str = "executor"

    @abstractmethod
    def run_tasks(
        self,
        tasks: Sequence[Any],
        fn: Callable[[Any], Any] = execute_window_task,
    ) -> List[Any]:
        """Execute every task; result ``i`` corresponds to task ``i``."""

    @property
    def effective_workers(self) -> int:
        """How many processes actually compute (1 for serial)."""
        return 1

    def shutdown(self) -> None:
        """Release any worker resources (idempotent; a no-op for serial).

        Long-lived services — the streaming gateway shards poll their
        executor thousands of times — call this once at teardown; batch
        sweeps may ignore it entirely.
        """

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class SerialExecutor(Executor):
    """Run every task in-process, in order — the deterministic default."""

    name = "serial"

    def run_tasks(
        self,
        tasks: Sequence[Any],
        fn: Callable[[Any], Any] = execute_window_task,
    ) -> List[Any]:
        """Execute tasks one by one; result order matches task order."""
        return [fn(task) for task in tasks]


class ParallelExecutor(Executor):
    """Fan tasks out over worker processes with bounded submission.

    Parameters
    ----------
    workers:
        Worker process count (default: the machine's CPU count).
    max_inflight:
        Cap on outstanding submitted futures (default ``4 × workers``);
        bounds both scheduler memory and pickled-payload backlog.
    persistent:
        Keep the worker pool alive across :meth:`run_tasks` calls
        instead of spawning one per call.  Batch sweeps call
        ``run_tasks`` once, so the default (False) costs them nothing;
        a streaming gateway shard polls thousands of times, and paying
        process spawn per poll would dwarf the solves.  A persistent
        pool must be released with :meth:`shutdown` (or by using the
        executor as a context manager).

    Determinism: each worker rebuilds front-end/receiver state from the
    task payload via per-process caches, and every solve is a pure
    function of the task, so outcomes are bit-identical to
    :class:`SerialExecutor` regardless of scheduling order.
    """

    name = "parallel"

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        max_inflight: Optional[int] = None,
        persistent: bool = False,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.workers = int(workers)
        self.max_inflight = (
            int(max_inflight) if max_inflight is not None else 4 * self.workers
        )
        self.persistent = bool(persistent)
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None

    @property
    def effective_workers(self) -> int:
        """The configured worker-process count."""
        return self.workers

    def shutdown(self) -> None:
        """Tear down the persistent pool, if one is alive (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _run_on_pool(
        self,
        pool: concurrent.futures.ProcessPoolExecutor,
        tasks: List[Any],
        fn: Callable[[Any], Any],
    ) -> List[Any]:
        results: List[Optional[Any]] = [None] * len(tasks)
        pending = {}
        task_iter = iter(enumerate(tasks))
        exhausted = False
        while pending or not exhausted:
            while not exhausted and len(pending) < self.max_inflight:
                try:
                    index, task = next(task_iter)
                except StopIteration:
                    exhausted = True
                    break
                pending[pool.submit(fn, task)] = index
            if not pending:
                break
            done, _ = concurrent.futures.wait(
                pending, return_when=concurrent.futures.FIRST_COMPLETED
            )
            for future in done:
                index = pending.pop(future)
                results[index] = future.result()
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def run_tasks(
        self,
        tasks: Sequence[Any],
        fn: Callable[[Any], Any] = execute_window_task,
    ) -> List[Any]:
        """Execute tasks across the pool; result order matches task order.

        ``fn`` must be a module-level function so it can be pickled to
        the workers.
        """
        tasks = list(tasks)
        if self.workers == 1 or (len(tasks) <= 1 and self._pool is None):
            # Not worth a pool; also keeps the single-task path trivially
            # debuggable.  (With a warm persistent pool, reusing it is
            # cheaper than the serial special case is worth.)
            return SerialExecutor().run_tasks(tasks, fn)
        if self.persistent:
            if self._pool is None:
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.workers
                )
            return self._run_on_pool(self._pool, tasks, fn)
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers
        ) as pool:
            return self._run_on_pool(pool, tasks, fn)


def resolve_worker_count(workers: Optional[int]) -> int:
    """Concrete worker count for a ``--workers N`` knob.

    ``None`` or ``0`` mean "use every CPU"; any other value is taken
    as-is (validated to be positive).
    """
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError("workers cannot be negative")
    return int(workers)


def executor_from_workers(workers: Optional[int]) -> Executor:
    """Executor for a ``--workers N`` style knob.

    The single worker-selection policy every CLI subcommand shares:
    ``1`` (or ``None``) selects the serial executor, ``0`` means "all
    CPUs", and anything larger selects a parallel executor with that
    many processes.  A resolved count of one collapses to serial.
    """
    count = resolve_worker_count(workers if workers is not None else 1)
    if count <= 1:
        return SerialExecutor()
    return ParallelExecutor(workers=count)
