"""Staged execution engine with pluggable parallel executors.

The end-to-end flow (record → packets → reconstruction → metrics) as an
explicit stage graph — ``encode → transport → recover → score`` — over
window-level tasks, scheduled by interchangeable executors:

* :class:`SerialExecutor` — in-process, bit-identical to the historical
  pipeline (the default everywhere);
* :class:`ParallelExecutor` — process-pool fan-out with deterministic
  per-task seeding and bounded in-flight submission.

`repro.core.pipeline` and `repro.experiments.runner` are thin wrappers
over this layer; see ``docs/architecture.md`` for the design.
"""

from repro.runtime.engine import ExecutionEngine, RecordJob, StageHook
from repro.runtime.executors import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    executor_from_workers,
    resolve_worker_count,
)
from repro.runtime.stages import STAGE_NAMES, execute_window_task, link_for_params
from repro.runtime.task import CodebookSpec, WindowTask, task_seed

__all__ = [
    "STAGE_NAMES",
    "CodebookSpec",
    "ExecutionEngine",
    "Executor",
    "ParallelExecutor",
    "RecordJob",
    "SerialExecutor",
    "StageHook",
    "WindowTask",
    "execute_window_task",
    "executor_from_workers",
    "link_for_params",
    "resolve_worker_count",
    "task_seed",
]
