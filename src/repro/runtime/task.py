"""Window-level task units for the staged execution engine.

A :class:`WindowTask` is the unit of scheduling: one window of one record
through one front-end method under one config.  Every field is a plain
picklable value so a task can cross a process boundary; in particular the
codebook travels as a :class:`CodebookSpec` — usually just a
:class:`~repro.core.codebooks.CodebookKey` recipe that workers rebuild
locally — never as live solver state.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.coding.codebook import DifferenceCodebook
from repro.core.codebooks import CodebookKey, build_codebook
from repro.core.config import FrontEndConfig
from repro.recovery.methods import resolve_method

__all__ = ["CodebookSpec", "WindowTask", "task_seed"]


@dataclass(frozen=True)
class CodebookSpec:
    """How a task obtains its difference codebook.

    Three kinds:

    * ``"none"`` — no parallel channel (normal-CS tasks);
    * ``"default"`` — rebuild from a :class:`CodebookKey` recipe (cached
      per process; the cheap, picklable path parallel sweeps use);
    * ``"inline"`` — carry an explicit
      :class:`~repro.coding.codebook.DifferenceCodebook` object (custom
      codebooks; heavier to pickle, so prefer keys for parallel runs).
    """

    kind: str = "none"
    key: Optional[CodebookKey] = None
    inline: Optional[DifferenceCodebook] = None

    def __post_init__(self) -> None:
        if self.kind not in ("none", "default", "inline"):
            raise ValueError(f"unknown codebook spec kind {self.kind!r}")
        if self.kind == "default" and self.key is None:
            raise ValueError("default codebook spec needs a CodebookKey")
        if self.kind == "inline" and self.inline is None:
            raise ValueError("inline codebook spec needs a codebook object")

    @classmethod
    def none(cls) -> "CodebookSpec":
        """Spec for tasks with no low-res channel."""
        return cls(kind="none")

    @classmethod
    def default(cls, key: CodebookKey) -> "CodebookSpec":
        """Spec that rebuilds the codebook from a picklable recipe."""
        return cls(kind="default", key=key)

    @classmethod
    def from_object(cls, codebook: DifferenceCodebook) -> "CodebookSpec":
        """Spec carrying an explicit codebook object."""
        return cls(kind="inline", inline=codebook)

    @property
    def is_hashable(self) -> bool:
        """Whether the spec can key a per-process cache (inline cannot)."""
        return self.kind != "inline"

    def resolve(self) -> Optional[DifferenceCodebook]:
        """The concrete codebook for this spec (None for kind ``none``)."""
        if self.kind == "none":
            return None
        if self.kind == "default":
            assert self.key is not None
            return build_codebook(self.key)
        return self.inline


def task_seed(record_name: str, method: str, window_index: int) -> int:
    """Deterministic 32-bit seed for one task, stable across processes.

    Derived by hashing the task identity (not Python's randomized
    ``hash``), so stochastic stages — e.g. a lossy-link transport model —
    draw identical streams no matter which worker executes the task or in
    what order tasks complete.
    """
    blob = f"{record_name}|{method}|{window_index}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:4], "big")


@dataclass(frozen=True)
class WindowTask:
    """One window-level unit of work for the stage graph.

    Attributes
    ----------
    record_name:
        Name of the source record (labelling and seeding only).
    method:
        A registered recovery-method name (see
        :func:`repro.recovery.methods.method_names`).
    window_index:
        Index of this window within its record.
    codes:
        The window's raw acquisition codes, shape ``(window_len,)`` int.
    config:
        Shared link configuration (hashable, picklable).
    codebook:
        Codebook spec (see :class:`CodebookSpec`).
    seed:
        Deterministic per-task seed for stochastic stages.
    """

    record_name: str
    method: str
    window_index: int
    codes: np.ndarray
    config: FrontEndConfig
    codebook: CodebookSpec
    seed: int

    def __post_init__(self) -> None:
        resolve_method(self.method)
        if self.window_index < 0:
            raise ValueError("window_index cannot be negative")
