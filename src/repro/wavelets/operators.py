"""Sparsifying-basis operators Ψ used by the CS recovery.

The recovery problem (paper Eq. 1) works with a synthesis operator Ψ mapping
coefficients α to signal samples ``x = Ψ α``.  All bases here are
*orthonormal*, so the analysis map is simply the transpose/inverse — a fact
the solvers exploit (``opnorm(Ψ) = 1`` and projections in signal space pull
back exactly).

Three bases are provided:

* :class:`WaveletBasis` — periodized orthogonal multilevel DWT (default
  db4, the basis used in the authors' earlier ECG-CS work);
* :class:`DctBasis` — orthonormal DCT-II;
* :class:`IdentityBasis` — for experiments on signals sparse in the sample
  domain.

Each exposes ``synthesize``/``analyze``/``as_matrix`` plus the window
length ``n``; :func:`make_basis` builds one from a config string.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np
from scipy.fft import dct as _dct, idct as _idct

from repro.wavelets.dwt import WaveletCoeffs, coeff_slices, max_level, wavedec, waverec
from repro.wavelets.filters import WaveletFilter, wavelet

__all__ = [
    "SynthesisBasis",
    "WaveletBasis",
    "DctBasis",
    "IdentityBasis",
    "make_basis",
]


class SynthesisBasis(abc.ABC):
    """Abstract orthonormal synthesis basis on ``R^n``.

    Subclasses implement the coefficient-to-signal map and its inverse;
    orthonormality (``analyze == synthesize^{-1} == synthesize^T``) is a
    contract verified by the test suite for every concrete basis.
    """

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError("window length must be positive")
        self._n = n

    @property
    def n(self) -> int:
        """Window length (and coefficient count — the basis is square)."""
        return self._n

    @abc.abstractmethod
    def synthesize(self, alpha: np.ndarray) -> np.ndarray:
        """Map coefficients ``alpha`` to samples ``x = Ψ alpha``; both shape ``(n,)``."""

    @abc.abstractmethod
    def analyze(self, x: np.ndarray) -> np.ndarray:
        """Map samples to coefficients ``alpha = Ψ^T x``; both shape ``(n,)``."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Human-readable basis identifier."""

    def _check_vec(self, v: np.ndarray) -> np.ndarray:
        arr = np.asarray(v, dtype=float)
        if arr.ndim != 1 or arr.size != self._n:
            raise ValueError(f"expected a vector of length {self._n}")
        return arr

    def as_matrix(self) -> np.ndarray:
        """Dense synthesis matrix, shape ``(n, n)`` (columns are atoms)."""
        eye = np.eye(self._n)
        cols = [self.synthesize(eye[:, j]) for j in range(self._n)]
        return np.stack(cols, axis=1)

    def sparsity_profile(self, x: np.ndarray, energy: float = 0.99) -> int:
        """Smallest k such that the k largest coefficients capture
        ``energy`` of the total coefficient energy — a direct measure of
        how compressible ``x`` is in this basis."""
        if not 0.0 < energy <= 1.0:
            raise ValueError("energy must be in (0, 1]")
        alpha = self.analyze(self._check_vec(x))
        mags = np.sort(np.abs(alpha))[::-1] ** 2
        total = float(np.sum(mags))
        if total == 0.0:
            return 0
        cum = np.cumsum(mags) / total
        return int(np.searchsorted(cum, energy) + 1)


class WaveletBasis(SynthesisBasis):
    """Orthonormal multilevel periodized wavelet basis.

    Parameters
    ----------
    n:
        Window length; must be divisible by ``2**levels``.
    wavelet_name:
        Any name accepted by :func:`repro.wavelets.filters.wavelet`.
    levels:
        Decomposition depth; defaults to the maximum sensible depth.
    """

    def __init__(
        self, n: int, wavelet_name: str = "db4", levels: Optional[int] = None
    ) -> None:
        super().__init__(n)
        self._filter: WaveletFilter = wavelet(wavelet_name)
        depth = max_level(n, self._filter) if levels is None else levels
        if depth < 1:
            raise ValueError(
                f"window of length {n} cannot support a {wavelet_name} DWT"
            )
        if n % (1 << depth):
            raise ValueError(
                f"window length {n} is not divisible by 2**{depth}"
            )
        self._levels = depth

    @property
    def name(self) -> str:
        return f"{self._filter.name}-L{self._levels}"

    @property
    def levels(self) -> int:
        """Decomposition depth J."""
        return self._levels

    @property
    def wavelet_name(self) -> str:
        """Underlying wavelet filter name."""
        return self._filter.name

    def analyze(self, x: np.ndarray) -> np.ndarray:
        """Flat DWT coefficients ``Ψ^T x``, shape ``(n,)``."""
        return wavedec(self._check_vec(x), self._filter, self._levels).flatten()

    def synthesize(self, alpha: np.ndarray) -> np.ndarray:
        """Signal from the flat coefficient vector, shape ``(n,)``."""
        coeffs = WaveletCoeffs.from_flat(
            self._check_vec(alpha), self._n, self._levels, self._filter.name
        )
        return waverec(coeffs)

    def subband_slices(self) -> list:
        """Slices of the flat coefficient vector per subband."""
        return coeff_slices(self._n, self._levels)


class DctBasis(SynthesisBasis):
    """Orthonormal DCT-II basis (type-2 analysis, type-3 synthesis)."""

    def __init__(self, n: int) -> None:
        super().__init__(n)

    @property
    def name(self) -> str:
        return "dct"

    def analyze(self, x: np.ndarray) -> np.ndarray:
        """DCT-II coefficients of ``x``, shape ``(n,)``."""
        return _dct(self._check_vec(x), type=2, norm="ortho")

    def synthesize(self, alpha: np.ndarray) -> np.ndarray:
        """Signal from DCT coefficients, shape ``(n,)``."""
        return _idct(self._check_vec(alpha), type=2, norm="ortho")


class IdentityBasis(SynthesisBasis):
    """The trivial basis Ψ = I (signal already sparse in sample domain)."""

    @property
    def name(self) -> str:
        return "identity"

    def analyze(self, x: np.ndarray) -> np.ndarray:
        """A copy of ``x`` (Ψ = I), shape ``(n,)``."""
        return self._check_vec(x).copy()

    def synthesize(self, alpha: np.ndarray) -> np.ndarray:
        """A copy of ``alpha`` (Ψ = I), shape ``(n,)``."""
        return self._check_vec(alpha).copy()


def make_basis(
    n: int, spec: str = "db4", levels: Optional[int] = None
) -> SynthesisBasis:
    """Build a basis from a short spec string.

    ``"dct"`` and ``"identity"`` name the fixed bases; anything else is
    interpreted as a wavelet name (``"haar"``, ``"db4"``, ``"sym6"``, ...).
    """
    key = spec.strip().lower()
    if key == "dct":
        return DctBasis(n)
    if key in ("identity", "eye", "dirac"):
        return IdentityBasis(n)
    return WaveletBasis(n, key, levels)
