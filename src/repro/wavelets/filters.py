"""Orthogonal wavelet filter banks, constructed from first principles.

The paper's CS recovery sparsifies ECG in an orthogonal wavelet basis (the
authors' earlier TBME-2011 work uses Daubechies wavelets).  No wavelet
library is available offline, so this module *derives* the filters:

* :func:`daubechies_lowpass` builds the length-``2p`` Daubechies scaling
  filter by spectral factorization of the maximally-flat halfband
  polynomial, selecting the minimum-phase factor (the textbook Daubechies
  construction);
* :func:`symlet_lowpass` performs the same factorization but selects the
  root combination with the *least asymmetric* phase, yielding Symlets;
* :func:`quadrature_mirror` derives the wavelet (high-pass) filter from a
  scaling filter.

Conventions follow PyWavelets: ``rec_lo`` is the scaling filter ``h`` with
``sum(h) == sqrt(2)``; ``dec_lo`` is its reverse; ``rec_hi[n] =
(-1)**n * h[L-1-n]`` and ``dec_hi`` is its reverse.  The test-suite checks
orthonormality, vanishing moments and perfect reconstruction rather than
comparing against hard-coded decimal tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import product
from typing import Tuple

import numpy as np
from scipy.special import comb

__all__ = [
    "WaveletFilter",
    "daubechies_lowpass",
    "symlet_lowpass",
    "quadrature_mirror",
    "wavelet",
    "available_wavelets",
    "MAX_VANISHING_MOMENTS",
]

#: Largest supported number of vanishing moments.  The factorization is
#: numerically delicate for very long filters; 10 covers db1-db10/sym2-sym10,
#: comfortably including the db4 default the ECG-CS literature uses.
MAX_VANISHING_MOMENTS = 10


def _binomial_halfband_roots(p: int) -> np.ndarray:
    """Roots (in y) of the degree-``p-1`` maximally-flat polynomial.

    ``P(y) = sum_{k=0}^{p-1} C(p-1+k, k) y**k`` is the unique minimal-degree
    polynomial with ``(1-y)**p P(y) + y**p P(1-y) = 2`` (Daubechies'
    halfband condition after the substitution ``y = sin^2(w/2)``).
    """
    coeffs = [float(comb(p - 1 + k, k, exact=True)) for k in range(p)]
    # numpy.roots wants highest-degree first.
    return np.roots(coeffs[::-1])


def _z_roots_from_y(y_roots: np.ndarray) -> np.ndarray:
    """Map each y-root to its pair of z-plane roots.

    With ``z = e^{iw}``, ``y = sin^2(w/2) = (2 - z - z^{-1}) / 4``; a root
    ``y0`` of ``P(y)`` therefore contributes the conjugate-reciprocal pair
    solving ``z^2 - (2 - 4 y0) z + 1 = 0``.  Returns an array of shape
    ``(len(y_roots), 2)`` with, per row, the root inside the unit circle
    first.
    """
    pairs = []
    for y0 in y_roots:
        b = 2.0 - 4.0 * y0
        disc = np.sqrt(b * b - 4.0 + 0j)
        z1 = (b + disc) / 2.0
        z2 = (b - disc) / 2.0
        if abs(z1) <= abs(z2):
            pairs.append((z1, z2))
        else:
            pairs.append((z2, z1))
    return np.array(pairs)


def _filter_from_roots(selected: np.ndarray, p: int) -> np.ndarray:
    """Assemble the scaling filter from ``p`` zeros at ``z=-1`` plus the
    selected spectral-factor roots, normalized to ``sum(h) = sqrt(2)``."""
    poly = np.array([1.0 + 0j])
    for _ in range(p):
        poly = np.convolve(poly, [1.0, 1.0])  # zero at z = -1
    for r in selected:
        poly = np.convolve(poly, [1.0, -r])
    h = np.real(poly)
    h = h * (np.sqrt(2.0) / np.sum(h))
    return h


@lru_cache(maxsize=32)
def daubechies_lowpass(p: int) -> Tuple[float, ...]:
    """The Daubechies-``p`` (extremal-phase) scaling filter, length ``2p``.

    Parameters
    ----------
    p:
        Number of vanishing moments, ``1 <= p <= MAX_VANISHING_MOMENTS``.
        ``p=1`` is the Haar filter.

    Returns
    -------
    tuple of float
        The scaling (reconstruction low-pass) filter with
        ``sum(h) == sqrt(2)`` and minimum phase.
    """
    if not 1 <= p <= MAX_VANISHING_MOMENTS:
        raise ValueError(
            f"vanishing moments must be in [1, {MAX_VANISHING_MOMENTS}], got {p}"
        )
    if p == 1:
        c = 1.0 / np.sqrt(2.0)
        return (c, c)
    y_roots = _binomial_halfband_roots(p)
    z_pairs = _z_roots_from_y(y_roots)
    inside = z_pairs[:, 0]  # minimum-phase choice: all roots inside
    return tuple(_filter_from_roots(inside, p))


def _phase_nonlinearity(h: np.ndarray) -> float:
    """A scalar score of how far a filter's phase is from linear.

    Evaluates the frequency response on a grid, unwraps the phase, removes
    the best linear fit and returns the residual energy.  Used to select the
    least-asymmetric (Symlet) spectral factor.
    """
    n_grid = 256
    w = np.linspace(1e-3, np.pi - 1e-3, n_grid)
    response = np.polyval(h[::-1], np.exp(-1j * w))
    phase = np.unwrap(np.angle(response))
    slope, intercept = np.polyfit(w, phase, 1)
    residual = phase - (slope * w + intercept)
    return float(np.sum(residual**2))


@lru_cache(maxsize=32)
def symlet_lowpass(p: int) -> Tuple[float, ...]:
    """The Symlet-``p`` (least-asymmetric Daubechies) scaling filter.

    Same halfband factorization as :func:`daubechies_lowpass`, but each
    complex-conjugate group of spectral-factor roots may be taken either
    inside or outside the unit circle; the combination minimizing phase
    nonlinearity is selected.  For ``p <= 3`` the choice is unique up to
    reflection, so sym2/sym3 coincide with db2/db3 (as in PyWavelets).
    """
    if not 2 <= p <= MAX_VANISHING_MOMENTS:
        raise ValueError(
            f"symlets need vanishing moments in [2, {MAX_VANISHING_MOMENTS}], got {p}"
        )
    y_roots = _binomial_halfband_roots(p)
    z_pairs = _z_roots_from_y(y_roots)

    # Group y-roots into conjugate pairs (complex) or singletons (real):
    # flipping a conjugate pair of y-roots means swapping both z-roots of
    # each member jointly, otherwise the filter would be complex.
    groups = []
    used = np.zeros(len(y_roots), dtype=bool)
    for i, y0 in enumerate(y_roots):
        if used[i]:
            continue
        used[i] = True
        if abs(y0.imag) < 1e-12:
            groups.append([i])
            continue
        # find the conjugate partner
        partner = None
        for j in range(i + 1, len(y_roots)):
            if not used[j] and abs(y_roots[j] - np.conj(y0)) < 1e-8:
                partner = j
                break
        if partner is None:  # numerically unpaired; treat alone
            groups.append([i])
        else:
            used[partner] = True
            groups.append([i, partner])

    best_h = None
    best_score = np.inf
    for choice in product((0, 1), repeat=len(groups)):
        selected = []
        for grp, side in zip(groups, choice):
            for idx in grp:
                selected.append(z_pairs[idx, side])
        h = _filter_from_roots(np.array(selected), p)
        score = _phase_nonlinearity(h)
        if score < best_score:
            best_score = score
            best_h = h
    assert best_h is not None
    return tuple(best_h)


def quadrature_mirror(rec_lo: np.ndarray) -> np.ndarray:
    """Wavelet (high-pass) filter from a scaling filter.

    ``g[n] = (-1)**n * h[L-1-n]`` — the alternating-flip construction that
    makes ``(h, g)`` an orthonormal filter pair; same length as ``h``.
    """
    h = np.asarray(rec_lo, dtype=float)
    if h.ndim != 1 or h.size < 2 or h.size % 2:
        raise ValueError("scaling filter must be 1-D with even length >= 2")
    signs = (-1.0) ** np.arange(h.size)
    return signs * h[::-1]


@dataclass(frozen=True)
class WaveletFilter:
    """A complete orthogonal analysis/synthesis filter bank.

    Attributes follow PyWavelets naming: ``dec_*`` are analysis filters
    (applied by correlation in the DWT), ``rec_*`` synthesis filters.
    """

    name: str
    rec_lo: Tuple[float, ...]
    vanishing_moments: int

    @property
    def length(self) -> int:
        """Filter length (``2 * vanishing_moments`` for db/sym)."""
        return len(self.rec_lo)

    @property
    def rec_hi(self) -> Tuple[float, ...]:
        """Synthesis high-pass filter."""
        return tuple(quadrature_mirror(np.asarray(self.rec_lo)))

    @property
    def dec_lo(self) -> Tuple[float, ...]:
        """Analysis low-pass filter (time-reverse of ``rec_lo``)."""
        return tuple(reversed(self.rec_lo))

    @property
    def dec_hi(self) -> Tuple[float, ...]:
        """Analysis high-pass filter (time-reverse of ``rec_hi``)."""
        return tuple(reversed(self.rec_hi))

    def arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(dec_lo, dec_hi, rec_lo, rec_hi)`` as float arrays."""
        return (
            np.asarray(self.dec_lo),
            np.asarray(self.dec_hi),
            np.asarray(self.rec_lo),
            np.asarray(self.rec_hi),
        )


@lru_cache(maxsize=64)
def wavelet(name: str) -> WaveletFilter:
    """Look up a wavelet filter bank by name.

    Supported names: ``"haar"``, ``"db1"``-``"db10"``, ``"sym2"``-``"sym10"``
    (case-insensitive).
    """
    key = name.strip().lower()
    if key == "haar":
        return WaveletFilter("haar", daubechies_lowpass(1), 1)
    if key.startswith("db"):
        try:
            p = int(key[2:])
        except ValueError:
            raise ValueError(f"malformed wavelet name {name!r}") from None
        return WaveletFilter(key, daubechies_lowpass(p), p)
    if key.startswith("sym"):
        try:
            p = int(key[3:])
        except ValueError:
            raise ValueError(f"malformed wavelet name {name!r}") from None
        return WaveletFilter(key, symlet_lowpass(p), p)
    raise ValueError(
        f"unknown wavelet {name!r}; use 'haar', 'dbN' or 'symN' "
        f"with N <= {MAX_VANISHING_MOMENTS}"
    )


def available_wavelets() -> Tuple[str, ...]:
    """Names of every wavelet this module can construct."""
    names = ["haar"]
    names += [f"db{p}" for p in range(1, MAX_VANISHING_MOMENTS + 1)]
    names += [f"sym{p}" for p in range(2, MAX_VANISHING_MOMENTS + 1)]
    return tuple(names)
