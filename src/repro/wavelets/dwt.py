"""Multilevel periodized orthogonal discrete wavelet transform.

Implements the classic periodized (circular) orthogonal DWT.  For an
orthonormal filter pair the transform is an orthonormal change of basis on
``R^n`` — exactly what the CS recovery needs for the sparsifying basis Ψ:
``alpha = analyze(x)``, ``x = synthesize(alpha)``, with
``synthesize == analyze^T == analyze^{-1}``.

Coefficient layout follows the usual convention: a single flat vector
``[a_J | d_J | d_{J-1} | ... | d_1]`` where level 1 is the finest scale.
:class:`WaveletCoeffs` carries the structured view.

The window length must be divisible by ``2**levels`` (periodized transform
keeps lengths exactly halving).  512-sample windows with 5-6 levels — the
configuration used throughout the experiments — satisfy this.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.wavelets.filters import WaveletFilter, wavelet

__all__ = [
    "dwt_step",
    "idwt_step",
    "wavedec",
    "waverec",
    "WaveletCoeffs",
    "max_level",
    "coeff_slices",
]


def _resolve(wav: Union[str, WaveletFilter]) -> WaveletFilter:
    if isinstance(wav, WaveletFilter):
        return wav
    return wavelet(wav)


@lru_cache(maxsize=256)
def _analysis_index_matrix(n: int, filt_len: int) -> np.ndarray:
    """Index matrix for one periodized analysis step.

    Row ``k`` holds the circular indices ``(2k + j) mod n`` for
    ``j = 0..L-1``; the step is then ``x[idx] @ filter``.
    """
    half = n // 2
    offsets = np.arange(filt_len)[None, :]
    starts = 2 * np.arange(half)[:, None]
    return (starts + offsets) % n


def dwt_step(
    x: np.ndarray, wav: Union[str, WaveletFilter]
) -> Tuple[np.ndarray, np.ndarray]:
    """One level of the periodized analysis transform.

    Parameters
    ----------
    x:
        Even-length 1-D signal.
    wav:
        Wavelet name or :class:`WaveletFilter`.

    Returns
    -------
    (approx, detail):
        Two arrays of length ``len(x) // 2``.
    """
    filt = _resolve(wav)
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError("dwt_step expects a 1-D signal")
    n = x.size
    if n < 2 or n % 2:
        raise ValueError(f"signal length must be even and >= 2, got {n}")
    _, _, rec_lo, rec_hi = filt.arrays()
    idx = _analysis_index_matrix(n, filt.length)
    windows = x[idx]
    # Periodized analysis correlates the signal with the synthesis filters:
    # a[k] = sum_j h[j] * x[(2k + j) mod n]  (and likewise with g for d).
    approx = windows @ rec_lo
    detail = windows @ rec_hi
    return approx, detail


def idwt_step(
    approx: np.ndarray, detail: np.ndarray, wav: Union[str, WaveletFilter]
) -> np.ndarray:
    """One level of the periodized synthesis transform (inverse of
    :func:`dwt_step`); 1-D, twice the subband length."""
    filt = _resolve(wav)
    a = np.asarray(approx, dtype=float)
    d = np.asarray(detail, dtype=float)
    if a.shape != d.shape or a.ndim != 1:
        raise ValueError("approx and detail must be 1-D with equal length")
    half = a.size
    n = 2 * half
    _, _, rec_lo, rec_hi = filt.arrays()
    x = np.zeros(n)
    idx = _analysis_index_matrix(n, filt.length)
    # Adjoint of the analysis step: scatter each coefficient back through
    # the same circular index pattern with the same filters, which for an
    # orthonormal bank is also the exact inverse.
    np.add.at(x, idx, a[:, None] * rec_lo[None, :])
    np.add.at(x, idx, d[:, None] * rec_hi[None, :])
    return x


def max_level(n: int, wav: Union[str, WaveletFilter]) -> int:
    """Largest decomposition depth such that every level has even length.

    The periodized transform only needs even lengths (wrap-around handles
    short signals), but stopping once the approximation would drop below
    the filter length keeps the transform well-conditioned; this matches
    PyWavelets' ``dwt_max_level`` for periodization.
    """
    filt = _resolve(wav)
    if n <= 0:
        raise ValueError("n must be positive")
    level = 0
    length = n
    while length % 2 == 0 and length // 2 >= filt.length:
        length //= 2
        level += 1
    return level


@dataclass(frozen=True)
class WaveletCoeffs:
    """Structured multilevel DWT coefficients.

    ``approx`` is the coarsest approximation ``a_J``; ``details[0]`` is the
    coarsest detail ``d_J`` and ``details[-1]`` the finest ``d_1``.
    """

    approx: np.ndarray
    details: Tuple[np.ndarray, ...]
    wavelet_name: str

    @property
    def levels(self) -> int:
        """Decomposition depth J."""
        return len(self.details)

    @property
    def n(self) -> int:
        """Length of the originating signal."""
        return int(self.approx.size + sum(d.size for d in self.details))

    def flatten(self) -> np.ndarray:
        """Concatenate into the flat ``[a_J | d_J | ... | d_1]`` vector, shape ``(n,)``."""
        return np.concatenate([self.approx, *self.details])

    @staticmethod
    def from_flat(
        vector: np.ndarray, n: int, levels: int, wavelet_name: str
    ) -> "WaveletCoeffs":
        """Rebuild the structured view from a flat coefficient vector."""
        vector = np.asarray(vector, dtype=float)
        if vector.size != n:
            raise ValueError(f"expected {n} coefficients, got {vector.size}")
        slices = coeff_slices(n, levels)
        approx = vector[slices[0]]
        details = tuple(vector[s] for s in slices[1:])
        return WaveletCoeffs(approx, details, wavelet_name)


def coeff_slices(n: int, levels: int) -> List[slice]:
    """Slices of the flat coefficient vector: ``[a_J, d_J, ..., d_1]``.

    Requires ``n`` divisible by ``2**levels``.
    """
    if levels < 0:
        raise ValueError("levels cannot be negative")
    if levels and n % (1 << levels):
        raise ValueError(
            f"signal length {n} is not divisible by 2**{levels}"
        )
    sizes = [n >> levels] + [n >> j for j in range(levels, 0, -1)]
    out: List[slice] = []
    pos = 0
    for size in sizes:
        out.append(slice(pos, pos + size))
        pos += size
    return out


def wavedec(
    x: Sequence[float], wav: Union[str, WaveletFilter], levels: int
) -> WaveletCoeffs:
    """Multilevel periodized analysis transform.

    Parameters
    ----------
    x:
        Signal of length divisible by ``2**levels``.
    wav:
        Wavelet name or filter bank.
    levels:
        Decomposition depth ``J >= 1``.
    """
    filt = _resolve(wav)
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 1:
        raise ValueError("wavedec expects a 1-D signal")
    if levels < 1:
        raise ValueError("levels must be >= 1")
    if arr.size % (1 << levels):
        raise ValueError(
            f"signal length {arr.size} is not divisible by 2**{levels}"
        )
    details: List[np.ndarray] = []
    approx = arr
    for _ in range(levels):
        approx, detail = dwt_step(approx, filt)
        details.append(detail)
    return WaveletCoeffs(approx, tuple(reversed(details)), filt.name)


def waverec(coeffs: WaveletCoeffs) -> np.ndarray:
    """Multilevel periodized synthesis transform (inverse of
    :func:`wavedec`); returns the 1-D signal."""
    filt = _resolve(coeffs.wavelet_name)
    x = np.asarray(coeffs.approx, dtype=float)
    for detail in coeffs.details:
        if detail.size != x.size:
            raise ValueError("inconsistent coefficient sizes")
        x = idwt_step(x, detail, filt)
    return x
