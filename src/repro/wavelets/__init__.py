"""Sparsifying transforms: orthogonal wavelets (built from scratch) and DCT."""

from repro.wavelets.dwt import (
    WaveletCoeffs,
    coeff_slices,
    dwt_step,
    idwt_step,
    max_level,
    wavedec,
    waverec,
)
from repro.wavelets.filters import (
    MAX_VANISHING_MOMENTS,
    WaveletFilter,
    available_wavelets,
    daubechies_lowpass,
    quadrature_mirror,
    symlet_lowpass,
    wavelet,
)
from repro.wavelets.operators import (
    DctBasis,
    IdentityBasis,
    SynthesisBasis,
    WaveletBasis,
    make_basis,
)

__all__ = [
    "DctBasis",
    "IdentityBasis",
    "MAX_VANISHING_MOMENTS",
    "SynthesisBasis",
    "WaveletBasis",
    "WaveletCoeffs",
    "WaveletFilter",
    "available_wavelets",
    "coeff_slices",
    "daubechies_lowpass",
    "dwt_step",
    "idwt_step",
    "make_basis",
    "max_level",
    "quadrature_mirror",
    "symlet_lowpass",
    "wavedec",
    "wavelet",
    "waverec",
]
