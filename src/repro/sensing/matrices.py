"""Measurement-matrix ensembles Φ for compressed sensing.

The RMPI architecture (paper Fig. 3) demodulates the input with ±1 chipping
sequences and integrates over the window: its exact discrete equivalent is a
Bernoulli ±1 matrix (one row per channel).  The module also provides the
dense Gaussian ensemble and the *sparse binary* ensemble of the authors'
TBME-2011 digital-CS work, plus small utilities shared by the solvers
(coherence, operator-norm estimation, seeded reproducibility).

All constructors normalize rows by ``1/sqrt(m)`` (Bernoulli/sparse-binary)
or draw entries as ``N(0, 1/m)`` so that ``Φ`` is approximately an isometry
on sparse vectors — the normalization the recovery-noise parameter σ
assumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "bernoulli_matrix",
    "gaussian_matrix",
    "sparse_binary_matrix",
    "subsampled_hadamard_matrix",
    "make_matrix",
    "mutual_coherence",
    "operator_norm",
    "SensingSpec",
]


def _check_shape(m: int, n: int) -> None:
    if m <= 0 or n <= 0:
        raise ValueError(f"matrix dimensions must be positive, got {m}x{n}")
    if m > n:
        raise ValueError(
            f"compressed sensing needs m <= n, got m={m} > n={n}"
        )


def bernoulli_matrix(
    m: int, n: int, *, seed: Optional[int] = None, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Random ±1 Bernoulli ensemble, scaled by ``1/sqrt(m)``.

    The discrete-time equivalent of an ``m``-channel RMPI bank with ±1
    chipping sequences and unit-gain integrate-and-dump (Section III-A).
    """
    _check_shape(m, n)
    rng = rng or np.random.default_rng(seed)
    signs = rng.integers(0, 2, size=(m, n)) * 2 - 1
    return signs.astype(float, copy=False) / np.sqrt(m)


def gaussian_matrix(
    m: int, n: int, *, seed: Optional[int] = None, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """i.i.d. ``N(0, 1/m)`` Gaussian ensemble, shape ``(m, n)``."""
    _check_shape(m, n)
    rng = rng or np.random.default_rng(seed)
    return rng.standard_normal((m, n)) / np.sqrt(m)


def sparse_binary_matrix(
    m: int,
    n: int,
    nonzeros_per_column: int = 12,
    *,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Sparse binary ensemble, shape ``(m, n)``: ``d`` ones per column.

    The hardware-friendly ensemble of Mamaghanian et al. (TBME 2011): each
    column has exactly ``nonzeros_per_column`` ones at uniformly random row
    positions, so measurement computation needs only additions.  Scaled by
    ``1/sqrt(nonzeros_per_column)`` to be column-normalized.
    """
    _check_shape(m, n)
    if not 1 <= nonzeros_per_column <= m:
        raise ValueError(
            f"nonzeros_per_column must be in [1, m={m}], got {nonzeros_per_column}"
        )
    rng = rng or np.random.default_rng(seed)
    phi = np.zeros((m, n))
    for col in range(n):
        rows = rng.choice(m, size=nonzeros_per_column, replace=False)
        phi[rows, col] = 1.0
    return phi / np.sqrt(nonzeros_per_column)


def subsampled_hadamard_matrix(
    m: int,
    n: int,
    *,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Randomly sub-sampled Walsh-Hadamard ensemble with sign randomization.

    ``m`` distinct rows of the order-``n`` Hadamard matrix (``n`` must be a
    power of two), right-multiplied by a random ±1 diagonal to kill
    coherence with structured bases, scaled by ``1/sqrt(m)``.  Like the
    Bernoulli ensemble its entries are ±1 — implementable with adders only
    — but the rows are *deterministic* codes, so a hardware realization
    only stores the row indices and the sign diagonal instead of full
    chipping sequences.
    """
    _check_shape(m, n)
    if n & (n - 1):
        raise ValueError("Hadamard ensemble needs n to be a power of two")
    rng = rng or np.random.default_rng(seed)
    from scipy.linalg import hadamard

    full = hadamard(n).astype(float, copy=False)
    rows = rng.choice(n, size=m, replace=False)
    signs = rng.integers(0, 2, size=n) * 2 - 1
    return full[rows] * signs[None, :] / np.sqrt(m)


def make_matrix(
    kind: str,
    m: int,
    n: int,
    *,
    seed: Optional[int] = None,
    nonzeros_per_column: int = 12,
) -> np.ndarray:
    """Build a named ensemble: ``"bernoulli"``, ``"gaussian"``,
    ``"sparse_binary"`` or ``"hadamard"``; returns shape ``(m, n)``."""
    key = kind.strip().lower()
    if key == "bernoulli":
        return bernoulli_matrix(m, n, seed=seed)
    if key == "gaussian":
        return gaussian_matrix(m, n, seed=seed)
    if key in ("sparse_binary", "sparse-binary", "sparse"):
        return sparse_binary_matrix(
            m, n, nonzeros_per_column, seed=seed
        )
    if key == "hadamard":
        return subsampled_hadamard_matrix(m, n, seed=seed)
    raise ValueError(f"unknown sensing-matrix kind {kind!r}")


def mutual_coherence(a: np.ndarray) -> float:
    """Largest absolute normalized inner product between distinct columns.

    A standard (pessimistic) proxy for CS recoverability; exposed mainly
    for the ensemble-comparison ablation.
    """
    mat = np.asarray(a, dtype=float)
    if mat.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    norms = np.linalg.norm(mat, axis=0)
    norms[norms == 0] = 1.0
    gram = (mat / norms).T @ (mat / norms)
    np.fill_diagonal(gram, 0.0)
    return float(np.max(np.abs(gram)))


def operator_norm(
    a: np.ndarray, *, n_iter: int = 50, seed: int = 0
) -> float:
    """Spectral norm via power iteration (no dense SVD needed)."""
    mat = np.asarray(a, dtype=float)
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(mat.shape[1])
    v /= np.linalg.norm(v)
    sigma = 0.0
    for _ in range(n_iter):
        w = mat @ v
        v = mat.T @ w
        nv = np.linalg.norm(v)
        if nv == 0:
            return 0.0
        v /= nv
        sigma = np.sqrt(nv)
    return float(sigma)


@dataclass(frozen=True)
class SensingSpec:
    """Declarative description of a sensing configuration.

    Used by the front-end config so that node and receiver can construct
    the *same* Φ from the shared seed (the codebook of chipping sequences
    is agreed offline, as on real hardware).
    """

    kind: str = "bernoulli"
    seed: int = 2015
    nonzeros_per_column: int = 12

    def build(self, m: int, n: int) -> np.ndarray:
        """Materialize the measurement matrix, shape ``(m, n)``."""
        return make_matrix(
            self.kind,
            m,
            n,
            seed=self.seed,
            nonzeros_per_column=self.nonzeros_per_column,
        )
