"""ADC quantizer models.

Two converters appear in the front-end:

* the **low-resolution parallel channel** — a B-bit uniform quantizer
  running at Nyquist rate; its output ``x_dot`` is both transmitted
  (Huffman-coded) and used as the reconstruction box constraint
  ``x_dot <= Ψα <= x_dot + d`` where ``d`` is the LSB step (Eq. 1);
* the **CS-channel measurement quantizer** digitizing the integrator
  outputs at full resolution.

Quantizers here operate on *integer ADC codes* of the acquisition front-end
(the MIT-BIH-style 11/12-bit samples): re-quantizing a high-resolution code
to B bits is a deterministic floor division, which makes the box constraint
exact — the true sample provably lies in ``[x_dot, x_dot + d)``.  A float
mid-rise quantizer is included for the analog RMPI simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = [
    "UniformQuantizer",
    "requantize_codes",
    "dequantize_codes",
    "lowres_bounds",
    "measurement_quantizer",
]


def requantize_codes(
    codes: np.ndarray, from_bits: int, to_bits: int
) -> np.ndarray:
    """Drop integer ADC codes from ``from_bits`` to ``to_bits`` (same shape).

    Keeps the ``to_bits`` most-significant bits (floor division by
    ``2**(from_bits - to_bits)``), exactly what a lower-resolution converter
    sampling the same analog value would produce (up to its own noise).
    """
    if to_bits > from_bits:
        raise ValueError(
            f"cannot requantize {from_bits}-bit codes up to {to_bits} bits"
        )
    if to_bits <= 0:
        raise ValueError("to_bits must be positive")
    arr = np.asarray(codes)
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError("requantize_codes expects integer ADC codes")
    if arr.size and (arr.min() < 0 or arr.max() >= (1 << from_bits)):
        raise ValueError(f"codes out of range for {from_bits}-bit input")
    shift = from_bits - to_bits
    return arr >> shift


def dequantize_codes(
    lowres_codes: np.ndarray, from_bits: int, to_bits: int
) -> np.ndarray:
    """Map low-res codes back to the high-res code grid (same shape).

    Returns the *lower edge* of each quantization cell (the ``x_dot`` of
    Eq. 1); the cell width is ``2**(from_bits - to_bits)`` high-res codes.
    """
    if to_bits > from_bits or to_bits <= 0:
        raise ValueError("invalid bit depths")
    arr = np.asarray(lowres_codes)
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError("dequantize_codes expects integer codes")
    shift = from_bits - to_bits
    return arr << shift


def lowres_bounds(
    lowres_codes: np.ndarray, from_bits: int, to_bits: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-sample bounds ``(lower, upper)`` on the original high-res codes.

    The original integer code ``c`` satisfies ``lower <= c <= upper`` with
    ``upper = lower + d - 1`` where ``d = 2**(from_bits - to_bits)`` — the
    "resolution depth step" of Eq. 1.  Bounds are returned as floats on the
    high-res code grid, ready to feed the solver after the same affine
    code-to-physical mapping as the signal.
    """
    lower = dequantize_codes(lowres_codes, from_bits, to_bits).astype(float, copy=False)
    step = float(1 << (from_bits - to_bits))
    upper = lower + step - 1.0
    return lower, upper


@dataclass(frozen=True)
class UniformQuantizer:
    """Uniform mid-rise quantizer on a symmetric analog range.

    Used by the behavioural RMPI model to digitize integrator outputs.

    Attributes
    ----------
    bits:
        Resolution.
    full_scale:
        The quantizer accepts inputs in ``[-full_scale, +full_scale)``;
        values outside are clipped (converter saturation).
    """

    bits: int
    full_scale: float

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError("bits must be positive")
        if self.full_scale <= 0:
            raise ValueError("full_scale must be positive")

    @property
    def levels(self) -> int:
        """Number of output codes."""
        return 1 << self.bits

    @property
    def step(self) -> float:
        """LSB size in input units."""
        return 2.0 * self.full_scale / self.levels

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Analog values to integer codes in ``[0, 2**bits - 1]`` (same shape)."""
        arr = np.asarray(x, dtype=float)
        codes = np.floor((arr + self.full_scale) / self.step)
        return np.clip(codes, 0, self.levels - 1).astype(np.int64, copy=False)

    def reconstruct(self, codes: np.ndarray) -> np.ndarray:
        """Integer codes back to cell-midpoint analog values (same shape)."""
        arr = np.asarray(codes)
        if arr.size and (arr.min() < 0 or arr.max() >= self.levels):
            raise ValueError("codes out of range")
        return (arr.astype(float, copy=False) + 0.5) * self.step - self.full_scale

    def quantize_reconstruct(self, x: np.ndarray) -> np.ndarray:
        """Round-trip: the quantized-and-decoded ``x`` (same shape)."""
        return self.reconstruct(self.quantize(x))


def measurement_quantizer(
    phi: np.ndarray, signal_peak: float, bits: int, headroom: float = 1.1
) -> UniformQuantizer:
    """Size a measurement quantizer for ``y = Φ x``.

    Chooses the full scale from a worst-case-ish bound on measurement
    amplitude: ``max_row ||Φ_row||_1 * signal_peak`` would never clip but
    wastes dynamic range, so we use the 2-norm row bound times a headroom
    factor, which in practice never clips for ECG (measurements of
    zero-mean windows concentrate far below the 1-norm bound).
    """
    if bits <= 0:
        raise ValueError("bits must be positive")
    if signal_peak <= 0:
        raise ValueError("signal_peak must be positive")
    row_norms = np.linalg.norm(np.asarray(phi, dtype=float), axis=1)
    scale = float(np.max(row_norms)) * signal_peak * headroom
    if scale <= 0:
        raise ValueError("degenerate sensing matrix")
    return UniformQuantizer(bits=bits, full_scale=scale)
