"""Behavioural simulator of the Random Modulator Pre-Integrator (RMPI).

The paper's CS channel (Fig. 3) is an RMPI: the analog input feeds ``m``
parallel random-demodulator channels; channel ``i`` multiplies the signal
by a ±1 pseudo-random chipping waveform ``p_i(t)`` (chips at the Nyquist
rate), integrates over the fixed processing window and samples the result.
With ideal blocks, the discrete equivalent over an ``n``-sample window is
exactly ``y = Φ x`` with Φ the ±1 Bernoulli matrix of chip signs (up to the
``1/sqrt(m)`` normalization) — which is why the digital experiments use
:func:`repro.sensing.matrices.bernoulli_matrix`.

This module exists so the *full analog path* can be exercised end-to-end:
it models the chipping mixer, a leaky integrator (finite OTA DC gain),
amplifier input-referred noise, and the sample-and-hold + ADC quantization,
and it can report its own *ideal discrete equivalent* so tests can bound
the modelling error each non-ideality introduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.devtools.contracts import check_finite, check_shape
from repro.sensing.quantizers import UniformQuantizer, measurement_quantizer

__all__ = ["RmpiNonidealities", "RmpiBank"]


@dataclass(frozen=True)
class RmpiNonidealities:
    """Circuit non-idealities of the behavioural RMPI model.

    Attributes
    ----------
    integrator_leak_per_chip:
        Fraction of the integrator state that leaks away each chip period
        (``0`` = ideal integrator; a finite-DC-gain OTA gives a small
        positive value, e.g. ``1e-4``).
    input_noise_rms:
        RMS of additive amplifier input-referred noise, in signal units,
        added per chip before integration.
    gain_mismatch_sigma:
        Per-channel multiplicative gain error std (e.g. ``0.01`` = 1 %
        channel-to-channel mismatch).
    seed:
        Seed for the noise/mismatch draws (chipping sequences have their
        own seed in :class:`RmpiBank`).
    """

    integrator_leak_per_chip: float = 0.0
    input_noise_rms: float = 0.0
    gain_mismatch_sigma: float = 0.0
    seed: int = 99

    def __post_init__(self) -> None:
        if not 0.0 <= self.integrator_leak_per_chip < 1.0:
            raise ValueError("leak must be in [0, 1)")
        if self.input_noise_rms < 0 or self.gain_mismatch_sigma < 0:
            raise ValueError("noise levels cannot be negative")

    @property
    def is_ideal(self) -> bool:
        """True when every non-ideality is disabled."""
        return (
            self.integrator_leak_per_chip == 0.0
            and self.input_noise_rms == 0.0
            and self.gain_mismatch_sigma == 0.0
        )


class RmpiBank:
    """A bank of ``m`` random-demodulator channels over ``n``-chip windows.

    Parameters
    ----------
    m:
        Number of parallel channels (= measurements per window).
    n:
        Chips (Nyquist samples) per processing window.
    seed:
        Seed for the chipping sequences; node and receiver must share it.
    nonidealities:
        Circuit imperfections; default ideal.
    adc_bits:
        If set, measurements are digitized by a mid-rise ADC sized via
        :func:`repro.sensing.quantizers.measurement_quantizer` on first
        use; if ``None`` the bank returns unquantized measurements.
    signal_peak:
        Expected peak |signal| used to size the measurement ADC.
    """

    def __init__(
        self,
        m: int,
        n: int,
        *,
        seed: int = 2015,
        nonidealities: RmpiNonidealities = RmpiNonidealities(),
        adc_bits: Optional[int] = None,
        signal_peak: float = 1.0,
    ) -> None:
        if m <= 0 or n <= 0:
            raise ValueError("m and n must be positive")
        if m > n:
            raise ValueError("RMPI needs m <= n")
        self.m = m
        self.n = n
        self.seed = seed
        self.nonidealities = nonidealities
        rng = np.random.default_rng(seed)
        # ±1 chipping signs, one row per channel, one column per chip.
        self._chips = (rng.integers(0, 2, size=(m, n)) * 2 - 1).astype(float, copy=False)
        mis_rng = np.random.default_rng(nonidealities.seed)
        self._gains = 1.0 + nonidealities.gain_mismatch_sigma * mis_rng.standard_normal(m)
        self._noise_rng = np.random.default_rng(nonidealities.seed + 1)
        self._quantizer: Optional[UniformQuantizer] = None
        self._adc_bits = adc_bits
        self._signal_peak = signal_peak

    @property
    def chips(self) -> np.ndarray:
        """The ±1 chipping sign matrix, shape ``(m, n)`` (read-only view)."""
        view = self._chips.view()
        view.flags.writeable = False
        return view

    def equivalent_matrix(self) -> np.ndarray:
        """The ideal discrete equivalent Φ (chip signs over ``sqrt(m)``).

        Matches :func:`repro.sensing.matrices.bernoulli_matrix` called with
        the same seed, so receiver-side recovery can be configured from the
        seed alone.
        """
        return self._chips / np.sqrt(self.m)

    def _ensure_quantizer(self) -> Optional[UniformQuantizer]:
        if self._adc_bits is None:
            return None
        if self._quantizer is None:
            self._quantizer = measurement_quantizer(
                self.equivalent_matrix(), self._signal_peak, self._adc_bits
            )
        return self._quantizer

    def measure(self, x: np.ndarray) -> np.ndarray:
        """Acquire one window: mix, integrate, sample, (optionally) digitize.

        Parameters
        ----------
        x:
            The ``n`` Nyquist-rate samples of the analog input over the
            window (the piecewise-constant chip-level discretization).

        Returns
        -------
        numpy.ndarray
            ``m`` measurements, shape ``(m,)``; with ideal settings and no ADC
            these equal ``equivalent_matrix() @ x`` exactly.
        """
        arr = check_shape(np.asarray(x, dtype=float), (self.n,), name="x")
        arr = check_finite(arr, name="x")
        nid = self.nonidealities
        mixed = self._chips * arr[None, :]
        if nid.input_noise_rms > 0:
            mixed = mixed + nid.input_noise_rms * self._noise_rng.standard_normal(
                mixed.shape
            )
        if nid.integrator_leak_per_chip > 0:
            # Leaky accumulation: state <- state * (1 - leak) + sample.
            decay = 1.0 - nid.integrator_leak_per_chip
            weights = decay ** np.arange(self.n - 1, -1, -1)
            integ = mixed @ weights
        else:
            integ = mixed.sum(axis=1)
        y = self._gains * integ / np.sqrt(self.m)
        quant = self._ensure_quantizer()
        if quant is not None:
            y = quant.quantize_reconstruct(y)
        return y

    def measurement_noise_bound(self, x_peak: float) -> float:
        """A crude 2-norm bound on ``||y_real - Φx||`` for solver σ sizing.

        Combines quantization (LSB/sqrt(12) per measurement), integrator
        leakage (first-order) and amplifier noise contributions.  Tests
        verify the bound holds on random inputs with margin.
        """
        nid = self.nonidealities
        var = 0.0
        quant = self._ensure_quantizer()
        if quant is not None:
            var += quant.step**2 / 12.0
        if nid.input_noise_rms > 0:
            var += self.n * nid.input_noise_rms**2 / self.m
        leak_term = 0.0
        if nid.integrator_leak_per_chip > 0:
            # Worst-case deterministic leakage error per channel.
            leak_term = (
                nid.integrator_leak_per_chip
                * self.n
                * x_peak
                / np.sqrt(self.m)
            )
        if nid.gain_mismatch_sigma > 0:
            leak_term += (
                3.0 * nid.gain_mismatch_sigma * self.n * x_peak / np.sqrt(self.m)
            )
        per_channel = np.sqrt(var) + leak_term
        return float(np.sqrt(self.m) * per_channel)
