"""Sensing layer: measurement ensembles, ADC quantizers and the RMPI model."""

from repro.sensing.matrices import (
    SensingSpec,
    bernoulli_matrix,
    gaussian_matrix,
    make_matrix,
    mutual_coherence,
    operator_norm,
    sparse_binary_matrix,
    subsampled_hadamard_matrix,
)
from repro.sensing.quantizers import (
    UniformQuantizer,
    dequantize_codes,
    lowres_bounds,
    measurement_quantizer,
    requantize_codes,
)
from repro.sensing.rmpi import RmpiBank, RmpiNonidealities

__all__ = [
    "RmpiBank",
    "RmpiNonidealities",
    "SensingSpec",
    "UniformQuantizer",
    "bernoulli_matrix",
    "dequantize_codes",
    "gaussian_matrix",
    "lowres_bounds",
    "make_matrix",
    "measurement_quantizer",
    "mutual_coherence",
    "operator_norm",
    "requantize_codes",
    "sparse_binary_matrix",
    "subsampled_hadamard_matrix",
]
