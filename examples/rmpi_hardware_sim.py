#!/usr/bin/env python
"""Behavioural RMPI simulation: how circuit non-idealities hit recovery.

The paper's analog CS path is an RMPI channel bank (Fig. 3).  This example
acquires the same ECG window through progressively less ideal banks —
integrator leakage (finite OTA gain), amplifier input noise, channel gain
mismatch, measurement-ADC quantization — and recovers with the *ideal*
discrete model, measuring how far the hardware can drift before recovery
quality suffers.  The hybrid design's bound constraint is exactly what
keeps it robust here.

Run:  python examples/rmpi_hardware_sim.py
"""

import numpy as np

from repro.metrics import snr_db
from repro.recovery import PdhgSettings, solve_bpdn, solve_hybrid
from repro.sensing import RmpiBank, RmpiNonidealities, lowres_bounds, requantize_codes
from repro.signals import load_record
from repro.wavelets import WaveletBasis

N, M = 512, 96
SETTINGS = PdhgSettings(max_iter=2500, tol=2e-4)

SCENARIOS = {
    "ideal bank": RmpiNonidealities(),
    "leaky integrator (1e-4/chip)": RmpiNonidealities(
        integrator_leak_per_chip=1e-4
    ),
    "amplifier noise (0.5 LSB rms)": RmpiNonidealities(input_noise_rms=0.25),
    "gain mismatch (1%)": RmpiNonidealities(gain_mismatch_sigma=0.01),
    "all of the above": RmpiNonidealities(
        integrator_leak_per_chip=1e-4,
        input_noise_rms=0.25,
        gain_mismatch_sigma=0.01,
    ),
}


def main() -> None:
    record = load_record("103", duration_s=10.0)
    window = next(record.windows(N))
    x = window.astype(float) - 1024

    basis = WaveletBasis(N, "db4")
    lowres = requantize_codes(window, 11, 7)
    lower, upper = lowres_bounds(lowres, 11, 7)
    lower, upper = lower - 1024, upper - 1024

    print(f"RMPI bank: m = {M} channels, n = {N} chips/window, "
          "12-bit measurement ADC\n")
    header = (f"{'scenario':<30} {'model err':>10} {'sigma':>8} "
              f"{'hybrid dB':>10} {'normal dB':>10}")
    print(header)
    print("-" * len(header))

    for name, nid in SCENARIOS.items():
        bank = RmpiBank(
            m=M, n=N, seed=2015, nonidealities=nid,
            adc_bits=12, signal_peak=1024.0,
        )
        phi = bank.equivalent_matrix()
        y = bank.measure(x)
        model_err = float(np.linalg.norm(y - phi @ x))
        sigma = bank.measurement_noise_bound(x_peak=float(np.max(np.abs(x))))

        hybrid = solve_hybrid(
            phi, basis, y, sigma, lower, upper, settings=SETTINGS
        )
        normal = solve_bpdn(phi, basis, y, sigma, settings=SETTINGS)
        print(f"{name:<30} {model_err:>10.2f} {sigma:>8.2f} "
              f"{snr_db(x, hybrid.x):>10.2f} {snr_db(x, normal.x):>10.2f}")

    print(
        "\nThe hybrid recovery degrades gracefully as the bank departs from\n"
        "the ideal model: the per-sample bounds cap the damage any\n"
        "measurement-domain error can do, while normal CS passes the full\n"
        "model mismatch into the reconstruction."
    )


if __name__ == "__main__":
    main()
