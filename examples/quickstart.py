#!/usr/bin/env python
"""Quickstart: compress and reconstruct one ECG record with hybrid CS.

The 60-second tour of the library's public API:

1. load a synthetic MIT-BIH-like record,
2. build the paper's hybrid front-end (CS path + 7-bit parallel path),
3. transmit packets, reconstruct at the receiver,
4. report the paper's metrics (CR, PRD, SNR).

Run:  python examples/quickstart.py
"""

from repro.core import (
    DEFAULT_CONFIG,
    HybridFrontEnd,
    HybridReceiver,
    default_codebook,
)
from repro.metrics import prd, snr_db
from repro.signals import load_record


def main() -> None:
    # --- 1. data -----------------------------------------------------
    record = load_record("100", duration_s=20.0)
    print(f"record {record.name}: {record.duration_s:.0f} s at "
          f"{record.header.fs_hz:.0f} Hz, {record.header.resolution_bits}-bit")

    # --- 2. the hybrid link ------------------------------------------
    # DEFAULT_CONFIG is the paper's operating point: 512-sample windows,
    # m = 96 measurements (81% CS-channel CR), 7-bit low-res channel,
    # db4 wavelet basis. Node and receiver share it (plus the offline
    # Huffman codebook), exactly like deployed hardware would.
    config = DEFAULT_CONFIG
    codebook = default_codebook(config.lowres_bits, config.acquisition_bits)
    node = HybridFrontEnd(config, codebook)
    receiver = HybridReceiver(config, codebook)
    print(f"config: n={config.window_len}, m={config.n_measurements} "
          f"({config.cs_cr_percent:.1f}% CS CR), "
          f"{config.lowres_bits}-bit parallel channel")
    print(f"on-node codebook: {codebook.n_entries} entries, "
          f"{codebook.storage_bytes()} bytes of flash")

    # --- 3. transmit & reconstruct ------------------------------------
    center = 1 << (config.acquisition_bits - 1)
    print(f"\n{'win':>4} {'bits':>6} {'net CR %':>9} {'PRD %':>7} {'SNR dB':>7}")
    for idx, window in enumerate(record.windows(config.window_len)):
        if idx >= 5:
            break
        packet = node.process_window(window, idx)
        wire = packet.to_bytes()          # what the radio would send
        recon = receiver.reconstruct(packet)

        reference = window.astype(float) - center
        reconstructed = recon.x_centered(center)
        budget = packet.budget()
        print(f"{idx:>4} {len(wire) * 8:>6} {budget.net_cr_percent:>9.2f} "
              f"{prd(reference, reconstructed):>7.2f} "
              f"{snr_db(reference, reconstructed):>7.2f}")

    print("\nEach window was compressed to <25% of its original bits while "
          "keeping clinical-grade quality (PRD < 9%).")


if __name__ == "__main__":
    main()
