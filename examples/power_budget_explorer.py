#!/usr/bin/env python
"""Power-budget exploration for an RMPI-based front-end (paper Section VI).

A hardware designer's view of the paper: given the 90 nm block models
(Eqs. 4, 5, 9), how does the power budget split across blocks, how does it
scale with the channel count, and what battery life does each design buy?

Reproduces the Fig. 11 reasoning interactively:

* block breakdown for normal RMPI (m = 240) vs hybrid (m = 96) at 360 Hz,
* the amplifier-dominance observation,
* the 2.5x / 11x operating points,
* projected lifetime on a 225 mAh coin cell (front-end only).

Run:  python examples/power_budget_explorer.py
"""

from repro.power import (
    HybridArchitecture,
    PAPER_OPERATING_POINTS,
    RmpiArchitecture,
    power_gain,
)

FS_HZ = 360.0
COIN_CELL_MAH = 225.0
VDD = 1.0


def battery_days(total_w: float) -> float:
    energy_j = COIN_CELL_MAH * 1e-3 * 3600.0 * VDD
    return energy_j / total_w / 86400.0


def show_breakdown(name: str, breakdown) -> None:
    uw = breakdown.as_microwatts()
    print(f"\n{name}")
    for key in ("P[adc]", "P[Int]", "P[amp]", "P[Total]"):
        share = uw[key] / uw["P[Total]"] * 100.0
        print(f"  {key:<9} {uw[key]:>12.4f} uW   ({share:5.1f}%)")
    print(f"  dominant block: {breakdown.dominant_block()}")


def main() -> None:
    normal = RmpiArchitecture(m=240, n=512)
    hybrid = HybridArchitecture(cs=RmpiArchitecture(m=96, n=512), lowres_bits=7)

    print(f"ECG front-end power at fs = {FS_HZ:.0f} Hz "
          "(90 nm models of Chen et al., as used by the paper)")
    show_breakdown("normal RMPI, m = 240 (SNR = 20 dB sizing):",
                   normal.breakdown(FS_HZ))
    show_breakdown("hybrid CS, m = 96 + 7-bit low-res channel:",
                   hybrid.breakdown(FS_HZ))
    lowres_share = hybrid.lowres_fraction(FS_HZ)
    print(f"\nlow-res channel share of hybrid total: {lowres_share:.2e} "
          "(the paper's 'negligible' claim, quantified)")

    print("\nFixed-quality operating points (paper Section VI):")
    print(f"{'target':>8} {'m normal':>9} {'m hybrid':>9} "
          f"{'model gain':>11} {'paper':>6}")
    for pt in PAPER_OPERATING_POINTS:
        gain = power_gain(pt.m_normal, pt.m_hybrid, fs_hz=FS_HZ)
        print(f"{pt.target_snr_db:>6.0f}dB {pt.m_normal:>9} {pt.m_hybrid:>9} "
              f"{gain:>10.2f}x {pt.paper_gain:>5.1f}x")

    print(f"\nProjected front-end-only lifetime on a {COIN_CELL_MAH:.0f} mAh "
          "coin cell:")
    for name, arch in (
        ("normal RMPI m=240", normal),
        ("hybrid m=96", hybrid),
        ("hybrid m=16 (17 dB point)",
         HybridArchitecture(cs=RmpiArchitecture(m=16, n=512), lowres_bits=7)),
    ):
        days = battery_days(arch.total_w(FS_HZ))
        print(f"  {name:<28} {days:>10.1f} days")

    print("\nScaling with sampling frequency (the HF motivation in the "
          "paper's conclusion):")
    print(f"{'fs':>10} {'normal uW':>12} {'hybrid uW':>12} {'gain':>6}")
    for fs in (360.0, 3.6e3, 3.6e5, 3.6e7):
        pn = normal.total_w(fs) * 1e6
        ph = hybrid.total_w(fs) * 1e6
        print(f"{fs:>10.0f} {pn:>12.4g} {ph:>12.4g} {pn / ph:>5.2f}x")


if __name__ == "__main__":
    main()
