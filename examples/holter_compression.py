#!/usr/bin/env python
"""Holter-monitor scenario: long-recording compression budget planning.

The paper's motivating workload (Section I): a wireless body sensor node
streaming ambulatory ECG for hours on a coin cell, where every transmitted
bit costs energy.  This example sizes a 24-hour Holter recording under
three front-end designs and reports, per design:

* total bits on air (radio energy is roughly proportional),
* reconstruction quality on a sampled subset of windows,
* how the hybrid design's low-res overhead pays for itself in solver-side
  robustness at aggressive compression.

Run:  python examples/holter_compression.py
"""

import numpy as np

from repro.core import FrontEndConfig, default_codebook, run_record
from repro.recovery import PdhgSettings
from repro.signals import load_record

HOURS = 24.0
FS = 360.0
SAMPLE_BITS = 12  # the paper's accounting resolution


def on_air_bits_per_window(outcome) -> float:
    return float(np.mean([w.budget.total_bits for w in outcome.windows]))


def main() -> None:
    # Evaluate on a representative minute, extrapolate to 24 h.
    record = load_record("119", duration_s=60.0)
    windows_per_day = int(HOURS * 3600 * FS) // 512
    raw_bits_day = windows_per_day * 512 * SAMPLE_BITS

    designs = {
        # Normal CS at the conservative CR where it still has "good"
        # quality in Fig. 7 (~50%).
        "normal CS @ 50% CR": dict(
            method="normal",
            config=FrontEndConfig(
                n_measurements=256, solver=PdhgSettings(max_iter=2500, tol=2e-4)
            ),
        ),
        # Hybrid at the paper's showcase operating point (81% CS CR).
        "hybrid @ 81% CR": dict(
            method="hybrid",
            config=FrontEndConfig(
                n_measurements=96, solver=PdhgSettings(max_iter=2500, tol=2e-4)
            ),
        ),
        # Hybrid pushed into the regime where normal CS has collapsed.
        "hybrid @ 94% CR": dict(
            method="hybrid",
            config=FrontEndConfig(
                n_measurements=32, solver=PdhgSettings(max_iter=2500, tol=2e-4)
            ),
        ),
    }

    print(f"Holter planning: {HOURS:.0f} h at {FS:.0f} Hz "
          f"= {raw_bits_day / 8 / 1e6:.1f} MB/day uncompressed\n")
    header = (f"{'design':<22} {'SNR dB':>7} {'PRD %':>7} {'net CR %':>9} "
              f"{'MB/day':>7} {'radio x':>8}")
    print(header)
    print("-" * len(header))

    for name, spec in designs.items():
        config = spec["config"]
        codebook = (
            default_codebook(config.lowres_bits, config.acquisition_bits)
            if spec["method"] == "hybrid"
            else None
        )
        outcome = run_record(
            record, config, method=spec["method"], codebook=codebook,
            max_windows=6,
        )
        bits_day = on_air_bits_per_window(outcome) * windows_per_day
        print(f"{name:<22} {outcome.mean_snr_db:>7.2f} {outcome.mean_prd:>7.2f} "
              f"{outcome.net_cr_percent:>9.2f} {bits_day / 8 / 1e6:>7.1f} "
              f"{raw_bits_day / bits_day:>7.1f}x")

    print(
        "\nReading: the hybrid design at 81% CS CR transmits ~4x fewer bits\n"
        "than uncompressed while holding PRD in the 'good' band, and it can\n"
        "be pushed past 90% CS CR — where plain CS recovery has already\n"
        "collapsed (Fig. 7) — at a graceful quality cost."
    )


if __name__ == "__main__":
    main()
