#!/usr/bin/env python
"""High-frequency A2I: the CS path as a *super-resolution* channel.

The paper's conclusion motivates a second application: at GHz-class rates
flash ADCs cap out around 8 effective bits, so a hybrid front-end can run
a *low-resolution* converter at the full rate and use a slow RMPI bank as
a super-resolution path that restores the lost bits — the same Eq. 1, with
the roles reversed in emphasis.

This example builds that scenario at laptop scale: a sparse multi-tone RF
burst "sampled" by an 6-bit coarse converter plus an m-channel RMPI, then
reconstructed (a) from the coarse samples alone, (b) by normal CS, and
(c) by hybrid CS.  The hybrid path recovers most of the resolution the
coarse ADC threw away.

Run:  python examples/hf_superresolution.py
"""

import numpy as np

from repro.metrics import snr_db
from repro.recovery import PdhgSettings, solve_bpdn, solve_hybrid
from repro.sensing import RmpiBank, UniformQuantizer
from repro.wavelets import DctBasis

N = 1024          # samples per processing window
M = 64            # RMPI channels (~6% of Nyquist: CS alone is hopeless)
COARSE_BITS = 6   # the "fast but shallow" flash ADC
TONES = 24        # spectral sparsity of the burst
SETTINGS = PdhgSettings(max_iter=4000, tol=1e-5)


def make_burst(rng: np.random.Generator) -> np.ndarray:
    """A sparse multi-tone burst, unit peak (normalized units: one 'GHz'
    window scales to any carrier — the math is rate-free)."""
    basis = DctBasis(N)
    alpha = np.zeros(N)
    bins = rng.choice(np.arange(16, N // 2), size=TONES, replace=False)
    alpha[bins] = rng.uniform(0.4, 1.0, TONES) * np.sign(rng.standard_normal(TONES))
    x = basis.synthesize(alpha)
    return x / np.max(np.abs(x))


def main() -> None:
    rng = np.random.default_rng(7)
    x = make_burst(rng)
    basis = DctBasis(N)

    # The coarse path: full-rate, few bits.
    coarse = UniformQuantizer(bits=COARSE_BITS, full_scale=1.0)
    x_coarse = coarse.quantize_reconstruct(x)
    lower = x_coarse - coarse.step / 2
    upper = x_coarse + coarse.step / 2

    # The super-resolution path: an RMPI bank at m/N of the Nyquist rate,
    # digitized finely (its converters run slow, so bits are cheap there).
    bank = RmpiBank(m=M, n=N, seed=42, adc_bits=12, signal_peak=1.0)
    y = bank.measure(x)
    phi = bank.equivalent_matrix()
    sigma = max(bank.measurement_noise_bound(1.0), 1e-6)

    results = {
        f"coarse ADC alone ({COARSE_BITS}-bit)": x_coarse,
        f"normal CS (m={M})": solve_bpdn(
            phi, basis, y, sigma, settings=SETTINGS
        ).x,
        f"hybrid CS (m={M} + coarse)": solve_hybrid(
            phi, basis, y, sigma, lower, upper, settings=SETTINGS
        ).x,
    }

    print(f"sparse burst: {TONES} tones in {N} samples | "
          f"RMPI channels: {M} ({M / N:.0%} of Nyquist)\n")
    print(f"{'method':<32} {'SNR dB':>8} {'ENOB-ish':>9}")
    print("-" * 51)
    for name, xr in results.items():
        s = snr_db(x, xr)
        enob = (s - 1.76) / 6.02  # the classic SNR-to-bits rule
        print(f"{name:<32} {s:>8.2f} {enob:>9.2f}")

    print(
        "\nWith only ~6% of Nyquist-rate channels, plain CS cannot even\n"
        "locate the tones — but fused with the coarse converter's bounds\n"
        "(Eq. 1) the same measurements add several effective bits beyond\n"
        f"the {COARSE_BITS}-bit flash ADC: the conclusion's proposed use of this\n"
        "architecture for HF analog-to-information conversion."
    )


if __name__ == "__main__":
    main()
