#!/usr/bin/env python
"""An adaptive, link-hardened sensor node — the extensions in one pipeline.

Combines three library extensions on top of the paper's hybrid design:

1. **activity-adaptive channel allocation** — the low-res stream rates
   each window's complexity and quiet windows power down RMPI channels;
2. **lossy-link hardening** — packets cross a bit-error/erasure channel;
   the receiver CRC-gates the hybrid decode, falls back to CS-only on
   corruption and conceals erasures;
3. **receiver-side preprocessing + QRS scoring** — the cleaned
   reconstruction is scored by beat-detection fidelity, the clinical
   bottom line.

Run:  python examples/adaptive_node.py
"""

import numpy as np

from repro.core import FrontEndConfig, default_codebook
from repro.core.adaptive import AdaptiveFrontEnd, AdaptiveReceiver
from repro.core.channel import LossyLink, payload_crc
from repro.metrics import reconstruction_fidelity, snr_db
from repro.recovery import PdhgSettings
from repro.signals import clean, load_record

CONFIG = FrontEndConfig(
    window_len=256,
    n_measurements=96,  # bank size (m_max)
    solver=PdhgSettings(max_iter=1500, tol=2e-4),
)
BER = 3e-5
ERASURES = 0.08


def main() -> None:
    codebook = default_codebook(CONFIG.lowres_bits, CONFIG.acquisition_bits)
    node = AdaptiveFrontEnd(CONFIG, codebook, m_min=24)
    receiver = AdaptiveReceiver(CONFIG, codebook)
    link = LossyLink(bit_error_rate=BER, packet_erasure_rate=ERASURES, seed=3)

    record = load_record("208", duration_s=30.0)  # the PVC-rich record
    fs = record.header.fs_hz
    windows = list(record.windows(CONFIG.window_len))[:12]

    print(f"adaptive node on record {record.name}: bank m_max = "
          f"{CONFIG.n_measurements}, link BER {BER:g}, "
          f"{ERASURES:.0%} erasures\n")
    print(f"{'win':>4} {'m':>4} {'bits':>6} {'status':>10} {'SNR dB':>8}")

    originals, recons = [], []
    total_bits = fixed_bits = 0
    for idx, window in enumerate(windows):
        packet = node.process_window(window, idx)
        crc = payload_crc(packet)
        total_bits += packet.total_bits
        fixed_bits += (
            packet.total_bits
            - packet.cs_bits
            + CONFIG.n_measurements * CONFIG.measurement_bits
        )

        arrived = link.transmit(packet)
        ref = window.astype(float) - 1024
        if arrived is None:
            status = "erased"
            recon_codes = recons[-1] + 1024 if recons else np.full(ref.size, 1024.0)
        elif payload_crc(arrived) != crc:
            # Corruption detected: drop the (possibly desynchronized)
            # low-res payload and decode from the CS measurements alone.
            status = "corrupted"
            from repro.core import WindowPacket

            stripped = WindowPacket(
                window_index=arrived.window_index,
                n=arrived.n,
                measurement_codes=arrived.measurement_codes,
                measurement_bits=arrived.measurement_bits,
                lowres_payload=b"",
                lowres_bit_length=0,
            )
            recon_codes = receiver.reconstruct(stripped).x_codes
        else:
            status = "ok"
            recon_codes = receiver.reconstruct(arrived).x_codes

        recon = recon_codes - 1024
        originals.append(ref)
        recons.append(recon)
        print(f"{idx:>4} {packet.m:>4} {packet.total_bits:>6} {status:>10} "
              f"{snr_db(ref, recon):>8.2f}")

    original = np.concatenate(originals)
    reconstructed = np.concatenate(recons)
    cleaned = clean(reconstructed, fs)
    cleaned_original = clean(original, fs)
    score = reconstruction_fidelity(cleaned_original, cleaned, fs)

    print(f"\nstream SNR: {snr_db(original, reconstructed):.2f} dB")
    print(f"bits vs fixed-m node: {total_bits} vs {fixed_bits} "
          f"({100 * (1 - total_bits / fixed_bits):.1f}% saved)")
    print(f"beat-detection fidelity after cleaning: "
          f"Se {score.sensitivity:.3f}, +P {score.positive_predictivity:.3f}, "
          f"F1 {score.f1:.3f}")


if __name__ == "__main__":
    main()
