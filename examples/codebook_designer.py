#!/usr/bin/env python
"""Designing the on-node Huffman codebook (paper Section III-B).

Walks the low-resolution-channel design loop a firmware engineer would
run before flashing a node:

1. pick candidate quantizer depths,
2. train an offline difference codebook per depth on a training corpus,
3. validate on *held-out* records (escape-rate, compression, losslessness),
4. read off the trade-off that led the paper to 7 bits.

Run:  python examples/codebook_designer.py
"""

import numpy as np

from repro.coding import ESCAPE, train_codebook
from repro.metrics import lowres_overhead
from repro.sensing import requantize_codes
from repro.signals import MITBIH_RECORD_NAMES, load_record

TRAIN = MITBIH_RECORD_NAMES[:10]
HELD_OUT = ("219", "223", "233")
DEPTHS = (4, 5, 6, 7, 8, 9, 10)
WINDOW = 512


def escape_rate(book, codes) -> float:
    """Fraction of coded tokens that needed the escape path."""
    from repro.coding import tokenize_diffs
    from repro.coding.differential import difference_encode

    _, diffs = difference_encode(codes)
    tokens = tokenize_diffs(diffs)
    known = set(book.codec.symbols) - {ESCAPE}
    misses = sum(1 for t in tokens if t not in known)
    return misses / max(len(tokens), 1)


def main() -> None:
    train_records = [load_record(n, duration_s=30.0) for n in TRAIN]
    test_records = [load_record(n, duration_s=30.0) for n in HELD_OUT]

    print(f"training on {len(TRAIN)} records, validating on "
          f"{len(HELD_OUT)} held-out records\n")
    header = (f"{'bits':>4} {'entries':>8} {'flash B':>8} {'bits/smp':>9} "
              f"{'overhead %':>11} {'escape %':>9} {'lossless':>9}")
    print(header)
    print("-" * len(header))

    for bits in DEPTHS:
        streams = [
            requantize_codes(r.adu, r.header.resolution_bits, bits)
            for r in train_records
        ]
        book = train_codebook(streams, bits)

        fractions, escapes, lossless = [], [], True
        for record in test_records:
            codes = requantize_codes(
                record.adu, record.header.resolution_bits, bits
            )
            for k in range(codes.size // WINDOW):
                window = codes[k * WINDOW : (k + 1) * WINDOW]
                payload, nbits = book.encode_window(window)
                decoded = book.decode_window(payload, WINDOW, nbits)
                lossless &= bool(np.array_equal(decoded, window))
                fractions.append(nbits / (WINDOW * bits))
            escapes.append(escape_rate(book, codes))

        frac = float(np.mean(fractions))
        print(f"{bits:>4} {book.n_entries:>8} {book.storage_bytes():>8} "
              f"{frac * bits:>9.2f} {lowres_overhead(min(frac, 1.0), bits):>11.2f} "
              f"{100 * float(np.mean(escapes)):>9.2f} {str(lossless):>9}")

    print(
        "\nReading the table like the paper did: overhead (the cost added\n"
        "to the CS channel's CR) grows with depth, while the reconstruction\n"
        "bound d = 2^(11-bits) shrinks.  7 bits buys a 16-code bound for a\n"
        "single-digit overhead and a codebook of well under 100 bytes —\n"
        "the operating point Section IV adopts."
    )


if __name__ == "__main__":
    main()
