"""Extension benchmark: adaptive vs fixed measurement allocation.

The low-res channel doubles as a free per-window complexity estimate, so
the node can power down RMPI channels on quiet windows.  This bench
measures the trade on real records: bits (and amplifier-energy) saved vs
quality retained, against the fixed-m front-end at the same bank size.
"""

import numpy as np

from repro.core.adaptive import AdaptiveFrontEnd, AdaptiveReceiver
from repro.core.config import FrontEndConfig
from repro.core.frontend import HybridFrontEnd
from repro.core.pipeline import default_codebook
from repro.core.receiver import HybridReceiver
from repro.metrics.quality import snr_db
from repro.power.rmpi_power import HybridArchitecture, RmpiArchitecture
from repro.recovery.pdhg import PdhgSettings
from repro.signals.database import load_record

CONFIG = FrontEndConfig(
    window_len=256,
    n_measurements=96,  # the bank size
    solver=PdhgSettings(max_iter=1200, tol=2e-4),
)
RECORDS = ("100", "103", "119")
WINDOWS = 6


def _run():
    codebook = default_codebook(CONFIG.lowres_bits, CONFIG.acquisition_bits)
    fixed_fe = HybridFrontEnd(CONFIG, codebook)
    fixed_rx = HybridReceiver(CONFIG, codebook)
    adaptive_fe = AdaptiveFrontEnd(CONFIG, codebook, m_min=24)
    adaptive_rx = AdaptiveReceiver(CONFIG, codebook)

    stats = {"fixed": {"snr": [], "bits": 0, "m": []},
             "adaptive": {"snr": [], "bits": 0, "m": []}}
    for name in RECORDS:
        record = load_record(name, duration_s=20.0)
        for idx, window in enumerate(record.windows(CONFIG.window_len)):
            if idx >= WINDOWS:
                break
            ref = window.astype(float) - 1024
            pf = fixed_fe.process_window(window, idx)
            rf = fixed_rx.reconstruct(pf)
            stats["fixed"]["snr"].append(snr_db(ref, rf.x_centered(1024)))
            stats["fixed"]["bits"] += pf.total_bits
            stats["fixed"]["m"].append(pf.m)

            pa = adaptive_fe.process_window(window, idx)
            ra = adaptive_rx.reconstruct(pa)
            stats["adaptive"]["snr"].append(snr_db(ref, ra.x_centered(1024)))
            stats["adaptive"]["bits"] += pa.total_bits
            stats["adaptive"]["m"].append(pa.m)
    return stats


def test_extension_adaptive_allocation(benchmark, table, emit_result):
    stats = benchmark.pedantic(_run, rounds=1, iterations=1)

    fixed_snr = float(np.mean(stats["fixed"]["snr"]))
    adaptive_snr = float(np.mean(stats["adaptive"]["snr"]))
    mean_m_fixed = float(np.mean(stats["fixed"]["m"]))
    mean_m_adaptive = float(np.mean(stats["adaptive"]["m"]))

    # The allocator must actually save measurements...
    assert mean_m_adaptive < mean_m_fixed
    assert stats["adaptive"]["bits"] < stats["fixed"]["bits"]
    # ...at a bounded quality cost.
    assert adaptive_snr > fixed_snr - 4.0

    # Amplifier-energy saving is ~proportional to the mean channel count.
    def power(m):
        return HybridArchitecture(
            cs=RmpiArchitecture(m=max(1, int(round(m))), n=CONFIG.window_len)
        ).total_w(360.0)

    energy_gain = power(mean_m_fixed) / power(mean_m_adaptive)

    rows = [
        ("mean SNR (dB)", f"{fixed_snr:.2f}", f"{adaptive_snr:.2f}"),
        ("mean m / window", f"{mean_m_fixed:.1f}", f"{mean_m_adaptive:.1f}"),
        ("total bits", stats["fixed"]["bits"], stats["adaptive"]["bits"]),
        ("front-end power gain", "1.00x", f"{energy_gain:.2f}x"),
    ]
    emit_result(
        "extension_adaptive_allocation",
        "Extension — activity-adaptive channel allocation (fixed vs adaptive)",
        table(["quantity", "fixed m=96", "adaptive"], rows),
    )
