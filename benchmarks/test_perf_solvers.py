"""Performance benchmarks: solver and coder throughput.

Unlike the figure benches (one-shot experiment reruns), these use
pytest-benchmark's repeated timing to track the hot paths a user actually
waits on: the Eq. 1 solve per window, the BPDN baseline, the DWT, and the
entropy-coding round trip.  Regressions here are regressions in every
experiment above.
"""

import numpy as np
import pytest

from repro.core.pipeline import default_codebook
from repro.recovery import CsProblem, PdhgSettings, solve_bpdn, solve_hybrid
from repro.sensing.matrices import bernoulli_matrix
from repro.sensing.quantizers import lowres_bounds, requantize_codes
from repro.signals.database import load_record
from repro.wavelets import WaveletBasis, wavedec, waverec

N, M = 512, 96
SETTINGS = PdhgSettings(max_iter=800, tol=2e-4)


@pytest.fixture(scope="module")
def window_setup():
    record = load_record("100", duration_s=10.0)
    window = next(record.windows(N))
    x = window.astype(float) - 1024
    basis = WaveletBasis(N, "db4")
    phi = bernoulli_matrix(M, N, seed=2015)
    prob = CsProblem(phi, basis)
    _ = prob.a  # pre-build the cached operator
    y = phi @ x
    lowres = requantize_codes(window, 11, 7)
    lower, upper = lowres_bounds(lowres, 11, 7)
    return {
        "window": window,
        "x": x,
        "basis": basis,
        "phi": phi,
        "prob": prob,
        "y": y,
        "lower": lower - 1024,
        "upper": upper - 1024,
        "lowres": lowres,
    }


def test_perf_hybrid_solve(benchmark, window_setup):
    s = window_setup
    result = benchmark(
        lambda: solve_hybrid(
            s["phi"], s["basis"], s["y"], 1e-3, s["lower"], s["upper"],
            problem=s["prob"], settings=SETTINGS,
        )
    )
    assert result.iterations > 0


def test_perf_bpdn_solve(benchmark, window_setup):
    s = window_setup
    result = benchmark(
        lambda: solve_bpdn(
            s["phi"], s["basis"], s["y"], 1e-3,
            problem=s["prob"], settings=SETTINGS,
        )
    )
    assert result.iterations > 0


def test_perf_dwt_roundtrip(benchmark, window_setup):
    x = window_setup["x"]

    def roundtrip():
        return waverec(wavedec(x, "db4", 6))

    out = benchmark(roundtrip)
    assert np.allclose(out, x, atol=1e-8)


def test_perf_lowres_coding_roundtrip(benchmark, window_setup):
    lowres = window_setup["lowres"]
    book = default_codebook(7)

    def roundtrip():
        payload, bits = book.encode_window(lowres)
        return book.decode_window(payload, lowres.size, bits)

    out = benchmark(roundtrip)
    assert np.array_equal(out, lowres)
