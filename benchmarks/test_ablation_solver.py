"""Ablation: recovery algorithm (DESIGN.md §5).

The paper solves Eq. 1 with a conic solver; we use PDHG.  This ablation
runs structurally different solvers on identical windows/measurements:
PDHG-BPDN vs ADMM-BPDN (must agree — same convex program), FISTA-LASSO
(penalized formulation), and the greedy baselines (OMP/CoSaMP/IHT) that
motivate convex recovery on compressible ECG.
"""

import numpy as np

from repro.metrics.quality import snr_db
from repro.recovery import (
    CsProblem,
    PdhgSettings,
    lambda_max,
    solve_bpdn,
    solve_bpdn_admm,
    solve_cosamp,
    solve_fista,
    solve_iht,
    solve_omp,
)
from repro.sensing.matrices import bernoulli_matrix
from repro.signals.database import load_record
from repro.wavelets.operators import WaveletBasis

N, M = 512, 192  # 62.5% CR: solidly in every solver's working range


def _windows():
    out = []
    for name in ("100", "103"):
        record = load_record(name, duration_s=10.0)
        x = record.adu[:N].astype(float) - 1024
        out.append(x)
    return out


def _run():
    basis = WaveletBasis(N, "db4")
    phi = bernoulli_matrix(M, N, seed=2015)
    prob = CsProblem(phi, basis)
    sigma = 1e-3
    results = {}
    for x in _windows():
        y = phi @ x
        k = max(8, M // 6)
        runs = {
            "pdhg-bpdn": solve_bpdn(
                phi, basis, y, sigma, problem=prob,
                settings=PdhgSettings(max_iter=3000, tol=1e-5),
            ),
            "admm-bpdn": solve_bpdn_admm(
                phi, basis, y, sigma, problem=prob, max_iter=3000
            ),
            "fista-lasso": solve_fista(
                phi, basis, y, 0.01 * lambda_max(prob, y),
                problem=prob, max_iter=3000,
            ),
            "omp": solve_omp(phi, basis, y, k, problem=prob),
            "cosamp": solve_cosamp(phi, basis, y, k, problem=prob),
            "iht": solve_iht(phi, basis, y, k, problem=prob),
        }
        for name, r in runs.items():
            results.setdefault(name, []).append(snr_db(x, r.x))
    return {name: float(np.mean(v)) for name, v in results.items()}


def test_ablation_solver(benchmark, table, emit_result):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    # PDHG and ADMM solve the same program: near-identical quality.
    assert abs(results["pdhg-bpdn"] - results["admm-bpdn"]) < 1.5
    # Convex recovery beats greedy on compressible ECG at this budget.
    best_greedy = max(results["omp"], results["cosamp"], results["iht"])
    assert results["pdhg-bpdn"] > best_greedy - 1.0

    rows = [(name, f"{snr:.2f}") for name, snr in sorted(results.items())]
    emit_result(
        "ablation_solver",
        "Ablation — recovery algorithm at 62.5% CS CR (mean SNR dB, normal CS)",
        table(["solver", "SNR (dB)"], rows),
    )
