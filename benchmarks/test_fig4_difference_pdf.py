"""Benchmark: paper Fig. 4 — PDF of quantized-sample differences.

Regenerates the four curves (10/8/6/4-bit) over the database and emits
the probability at each difference value in the plotted ±15 range.
"""

from repro.experiments import PAPER_FIG4_RESOLUTIONS, run_fig4


def test_fig4_difference_pdf(benchmark, table, emit_result, bench_scale):
    data = benchmark.pedantic(
        lambda: run_fig4(scale=bench_scale), rounds=1, iterations=1
    )

    # The paper's qualitative claim: distributions sharpen at low
    # resolution (far from uniform -> Huffman-codable).
    assert data.is_monotone_in_resolution()
    assert data.zero_mass(4) > 0.5

    support = data.pdfs[PAPER_FIG4_RESOLUTIONS[0]][0]
    headers = ["difference"] + [f"{b}-bit" for b in PAPER_FIG4_RESOLUTIONS]
    rows = []
    for i, d in enumerate(support):
        rows.append(
            [int(d)]
            + [f"{data.pdfs[b][1][i]:.4f}" for b in PAPER_FIG4_RESOLUTIONS]
        )
    emit_result(
        "fig4_difference_pdf",
        "Fig. 4 — PDF of difference between quantized samples",
        table(headers, rows),
    )
