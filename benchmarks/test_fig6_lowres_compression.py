"""Benchmark: paper Fig. 6 — average compression of the low-res channel.

Encodes every window of every record at each resolution and reports the
mean compressed fraction (the paper's Fig. 6 y-axis, valued in [0, 1]).
The paper's trend — compression worsens (fraction rises) as resolution
grows, because the difference distribution flattens — is asserted over
the 6..10-bit range where it holds strictly.
"""

from repro.experiments import PAPER_RESOLUTIONS, run_lowres_tradeoff


def test_fig6_lowres_compression(benchmark, table, emit_result, bench_scale):
    data = benchmark.pedantic(
        lambda: run_lowres_tradeoff(PAPER_RESOLUTIONS, scale=bench_scale),
        rounds=1,
        iterations=1,
    )

    # Compressed fraction grows with resolution in the mid-to-high range.
    fractions = {r.resolution_bits: r.compressed_fraction for r in data.rows}
    for lo, hi in ((6, 8), (8, 10)):
        assert fractions[lo] < fractions[hi]
    # And entropy coding always wins against raw transmission.
    assert all(r.compressed_fraction < 1.0 for r in data.rows)

    rows = [
        (
            r.resolution_bits,
            f"{r.compressed_fraction:.3f}",
            f"{r.bits_per_sample:.2f}",
        )
        for r in data.rows
    ]
    emit_result(
        "fig6_lowres_compression",
        "Fig. 6 — average compression ratio of the low-resolution path",
        table(
            ["N-bit resolution", "compressed fraction", "bits/sample"], rows
        ),
    )
