"""Benchmark: paper Fig. 5 — codebook storage vs quantizer resolution.

Trains the offline codebook at each resolution 3-10 bit and reports the
on-node storage in bytes (the paper quotes 68 B at the 7-bit trade-off
point; our synthetic streams are cleaner than raw MIT-BIH so the absolute
sizes are smaller, but the monotone growth with resolution — the figure's
message — is asserted).
"""

from repro.experiments import PAPER_RESOLUTIONS, run_lowres_tradeoff


def test_fig5_codebook_storage(benchmark, table, emit_result, bench_scale):
    data = benchmark.pedantic(
        lambda: run_lowres_tradeoff(PAPER_RESOLUTIONS, scale=bench_scale),
        rounds=1,
        iterations=1,
    )

    assert data.storage_is_monotone()

    rows = [
        (r.resolution_bits, r.codebook_entries, r.storage_bytes)
        for r in data.rows
    ]
    emit_result(
        "fig5_codebook_storage",
        "Fig. 5 — offline codebook storage per quantizer resolution",
        table(["N-bit resolution", "table entries", "storage (B)"], rows),
    )
