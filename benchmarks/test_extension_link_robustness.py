"""Extension benchmark: reconstruction quality under a lossy radio link.

Sweeps the bit-error rate and packet-erasure rate of the link and measures
stream SNR with the hardened receiver (CRC-gated hybrid decode, CS
fallback, erasure concealment).  The graceful-degradation claim a
deployable front-end needs: quality falls smoothly, never catastrophically.
"""

import numpy as np

from repro.core.channel import LossyLink, RobustReceiver, payload_crc
from repro.core.config import FrontEndConfig
from repro.core.frontend import HybridFrontEnd
from repro.core.pipeline import default_codebook
from repro.metrics.quality import snr_db
from repro.recovery.pdhg import PdhgSettings
from repro.signals.database import load_record

CONFIG = FrontEndConfig(
    window_len=256,
    n_measurements=64,
    solver=PdhgSettings(max_iter=1200, tol=2e-4),
)
SCENARIOS = (
    ("clean", 0.0, 0.0),
    ("BER 1e-5", 1e-5, 0.0),
    ("BER 1e-3", 1e-3, 0.0),
    ("25% erasures", 0.0, 0.25),
    ("BER 1e-3 + 25% erasures", 1e-3, 0.25),
)


def _run():
    codebook = default_codebook(CONFIG.lowres_bits, CONFIG.acquisition_bits)
    frontend = HybridFrontEnd(CONFIG, codebook)
    results = {}
    for name, ber, per in SCENARIOS:
        snrs = []
        modes = {"hybrid": 0, "cs-fallback": 0, "concealed": 0}
        for rec_name in ("100", "119"):
            record = load_record(rec_name, duration_s=20.0)
            windows = list(record.windows(CONFIG.window_len))[:6]
            packets = [frontend.process_window(w, i) for i, w in enumerate(windows)]
            crcs = [payload_crc(p) for p in packets]
            link = LossyLink(bit_error_rate=ber, packet_erasure_rate=per, seed=7)
            received = [link.transmit(p) for p in packets]
            rx = RobustReceiver(CONFIG, codebook)
            stream = rx.receive_stream(received, crcs)
            for (recon, mode), window in zip(stream, windows):
                ref = window.astype(float) - 1024
                snrs.append(snr_db(ref, recon.x_codes - 1024))
                modes[mode] += 1
        results[name] = {"snr": float(np.mean(snrs)), "modes": modes}
    return results


def test_extension_link_robustness(benchmark, table, emit_result):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    clean = results["clean"]["snr"]
    assert clean > 15.0
    # Mild impairment costs little.
    assert results["BER 1e-5"]["snr"] > clean - 3.0
    # Heavy impairment degrades but never produces garbage streams.
    for name, r in results.items():
        assert r["snr"] > 3.0, name
    # Erasures actually trigger concealment; corruption triggers fallback.
    assert results["25% erasures"]["modes"]["concealed"] > 0
    assert results["BER 1e-3"]["modes"]["cs-fallback"] > 0

    rows = [
        (
            name,
            f"{r['snr']:.2f}",
            r["modes"]["hybrid"],
            r["modes"]["cs-fallback"],
            r["modes"]["concealed"],
        )
        for name, r in results.items()
    ]
    emit_result(
        "extension_link_robustness",
        "Extension — stream SNR under link impairments (12 windows)",
        table(
            ["scenario", "SNR dB", "hybrid", "fallback", "concealed"], rows
        ),
    )
