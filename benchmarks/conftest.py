"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and *emits*
the same rows/series the paper reports: printed to stdout (visible with
``pytest -s`` or in the benchmark summary) and written to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference stable
artifacts.

Scale is controlled with ``REPRO_BENCH_SCALE`` (``small`` default /
``full`` = all 48 records); see :mod:`repro.experiments.runner`.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Sequence

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Plain-text table with right-aligned numeric-ish columns."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def emit(name: str, title: str, body: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    text = f"== {title} ==\n{body}\n"
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)


@pytest.fixture
def table():
    """The render_table helper as a fixture."""
    return render_table


@pytest.fixture
def emit_result():
    """The emit helper as a fixture."""
    return emit


@pytest.fixture(scope="session")
def bench_scale():
    """The active experiment scale (env-selectable)."""
    from repro.experiments.runner import active_scale

    return active_scale()
