"""Benchmark: paper Fig. 7 — averaged SNR and PRD vs compression ratio.

The paper's central quality figure.  Runs both methods over the CR axis
{50..97}% and asserts its claims:

* hybrid CS outperforms normal CS at every CR;
* the gap widens at high CR, where normal CS collapses;
* hybrid reaches "good" quality at a far higher CR than normal CS;
* at ~97% CS CR (≈85% net) the hybrid still exceeds 17 dB (Section V).
"""

from repro.experiments import run_fig7
from repro.metrics.quality import GOOD_PRD_THRESHOLD


def test_fig7_snr_prd_vs_cr(benchmark, table, emit_result, bench_scale):
    data = benchmark.pedantic(
        lambda: run_fig7(scale=bench_scale), rounds=1, iterations=1
    )

    assert data.hybrid_dominates()
    assert data.gap_widens_at_high_cr()

    # Normal CS collapse region (paper: "fails to converge or has very
    # poor reconstruction quality" above ~88%).
    assert data.normal.snr_at(97.0) < 5.0
    assert data.hybrid.snr_at(97.0) > 15.0

    # Section V: >17 dB at ~85% net compression.
    idx97 = data.hybrid.cr_percent.index(97.0)
    assert data.hybrid.net_cr_percent[idx97] > 80.0

    # "Good" quality threshold crossing: hybrid far beyond normal.
    good_h = data.hybrid.highest_good_cr(GOOD_PRD_THRESHOLD)
    good_n = data.normal.highest_good_cr(GOOD_PRD_THRESHOLD)
    assert good_h is not None
    assert good_n is None or good_h > good_n

    rows = []
    for i, cr in enumerate(data.hybrid.cr_percent):
        rows.append(
            (
                f"{cr:.0f}",
                f"{data.hybrid.snr_db[i]:.2f}",
                f"{data.normal.snr_db[i]:.2f}",
                f"{data.hybrid.prd_percent[i]:.2f}",
                f"{data.normal.prd_percent[i]:.2f}",
                f"{data.hybrid.net_cr_percent[i]:.2f}",
            )
        )
    emit_result(
        "fig7_snr_prd_vs_cr",
        "Fig. 7 — averaged SNR/PRD vs CS-channel CR (hybrid vs normal CS)"
        + f"\n(good-quality CR: hybrid {good_h}, normal {good_n})",
        table(
            [
                "CR %",
                "hybrid SNR dB",
                "CS SNR dB",
                "hybrid PRD %",
                "CS PRD %",
                "hybrid net CR %",
            ],
            rows,
        ),
    )
