"""Benchmark: paper Fig. 11 — power breakdown vs sampling frequency.

Sweeps the analytical models over 100 Hz - 100 MHz for both the normal
RMPI (m = 240) and the hybrid design (m = 96) at the SNR = 20 dB sizing,
and asserts the section's conclusions: the amplifier array dominates "with
a very large margin", the low-res path is negligible, and the hybrid total
is ~2.5x lower.
"""

import numpy as np

from repro.experiments import run_fig11


def test_fig11_power_breakdown(benchmark, table, emit_result):
    data = benchmark(run_fig11)

    assert data.amplifier_dominates()
    assert data.power_scales_linearly()
    assert data.gain_at(360.0) == np.clip(data.gain_at(360.0), 2.3, 2.7)
    assert data.lowres_fraction_at_360hz < 1e-3

    def rows_for(sweep):
        out = []
        for i, fs in enumerate(data.fs_hz[::4]):
            j = i * 4
            out.append(
                (
                    f"{fs:.3g}",
                    f"{sweep['adc_w'][j] * 1e6:.3g}",
                    f"{sweep['integrator_w'][j] * 1e6:.3g}",
                    f"{sweep['amplifier_w'][j] * 1e6:.3g}",
                    f"{sweep['total_w'][j] * 1e6:.3g}",
                )
            )
        return out

    headers = ["fs (Hz)", "P[adc] uW", "P[Int] uW", "P[amp] uW", "P[Total] uW"]
    body = (
        f"RMPI, m = {data.m_normal}:\n"
        + table(headers, rows_for(data.normal))
        + f"\n\nHybrid CS, m = {data.m_hybrid} (+7-bit low-res channel):\n"
        + table(headers, rows_for(data.hybrid))
        + f"\n\ntotal-power gain at 360 Hz: {data.gain_at(360.0):.2f}x"
        + f"\nlow-res path share of hybrid total: "
        + f"{data.lowres_fraction_at_360hz:.2e}"
    )
    emit_result(
        "fig11_power_breakdown",
        "Fig. 11 — power breakdown vs sampling frequency",
        body,
    )
