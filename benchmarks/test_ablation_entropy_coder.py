"""Ablation: Huffman vs arithmetic coding of the low-res stream.

The paper picks Huffman for its trivial node-side implementation; the
design question is how many bits that choice leaves on the table relative
to (a) the empirical entropy floor and (b) an arithmetic coder.  Measured
per resolution on real tokenized streams.
"""

import numpy as np

from repro.coding.arithmetic import ArithmeticCodec, ArithmeticModel
from repro.coding.differential import difference_encode, empirical_entropy_bits
from repro.coding.huffman import HuffmanCodec
from repro.coding.runlength import tokenize_diffs
from repro.sensing.quantizers import requantize_codes
from repro.signals.database import load_record

RECORDS = ("100", "103", "200")
RESOLUTIONS = (4, 7, 10)


def _token_stream(bits):
    streams = []
    for name in RECORDS:
        record = load_record(name, duration_s=20.0)
        codes = requantize_codes(record.adu, 11, bits)
        _, diffs = difference_encode(codes)
        streams.append(tokenize_diffs(diffs))
    return streams


def _run():
    rows = []
    for bits in RESOLUTIONS:
        streams = _token_stream(bits)
        train, test = streams[:-1], streams[-1]
        freqs = {}
        for stream in train:
            for tok in stream:
                freqs[tok] = freqs.get(tok, 0) + 1
        # Restrict the test stream to trained tokens (escape handling is
        # identical for both coders, so it cancels out of the comparison).
        known = set(freqs)
        test = [t for t in test if t in known]
        n_samples_equiv = sum(
            t.length if hasattr(t, "length") else 1 for t in test
        )

        huff = HuffmanCodec.from_frequencies(freqs)
        arith = ArithmeticCodec(ArithmeticModel.from_frequencies(freqs))
        _, h_bits = huff.encode(test)
        _, a_bits = arith.encode(test)

        record = load_record(RECORDS[-1], duration_s=20.0)
        codes = requantize_codes(record.adu, 11, bits)
        entropy_per_diff = empirical_entropy_bits(codes)

        rows.append(
            {
                "bits": bits,
                "huffman": h_bits / n_samples_equiv,
                "arithmetic": a_bits / n_samples_equiv,
                "diff_entropy": entropy_per_diff,
            }
        )
    return rows


def test_ablation_entropy_coder(benchmark, table, emit_result):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    for r in rows:
        # Arithmetic coding never loses to Huffman (up to flush overhead).
        assert r["arithmetic"] <= r["huffman"] * 1.02 + 0.01
        # Both coders on the *tokenized* stream beat the raw per-difference
        # entropy at low resolutions (the run-length transform's gain).
        if r["bits"] <= 4:
            assert r["huffman"] < r["diff_entropy"] + 0.5

    emit_result(
        "ablation_entropy_coder",
        "Ablation — entropy coder on the tokenized low-res stream "
        "(bits per Nyquist sample)",
        table(
            ["resolution", "Huffman", "arithmetic", "per-diff entropy"],
            [
                (
                    r["bits"],
                    f"{r['huffman']:.3f}",
                    f"{r['arithmetic']:.3f}",
                    f"{r['diff_entropy']:.3f}",
                )
                for r in rows
            ],
        ),
    )
