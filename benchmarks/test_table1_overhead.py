"""Benchmark: paper Table I — low-resolution channel overhead D_i.

Reports the measured overhead (Eq. 2) per resolution next to the paper's
row, asserting the properties that carry the design decision: overhead is
monotone in resolution and lands in single digits at the paper's 7-bit
operating point.
"""

from repro.experiments import (
    PAPER_RESOLUTIONS,
    PAPER_TABLE1_OVERHEADS,
    run_lowres_tradeoff,
)


def test_table1_overhead(benchmark, table, emit_result, bench_scale):
    data = benchmark.pedantic(
        lambda: run_lowres_tradeoff(PAPER_RESOLUTIONS, scale=bench_scale),
        rounds=1,
        iterations=1,
    )

    assert data.overhead_is_monotone()
    # The 7-bit operating point: paper 7.8%; ours must stay single-digit
    # for the net-CR arithmetic of Section V to carry over.
    assert data.row(7).overhead_percent < 12.0
    # Same order of magnitude across the sweep.
    for r in data.rows:
        paper = PAPER_TABLE1_OVERHEADS[r.resolution_bits]
        assert r.overhead_percent < 3.0 * paper + 3.0

    rows = [
        (
            r.resolution_bits,
            f"{r.overhead_percent:.2f}",
            f"{PAPER_TABLE1_OVERHEADS[r.resolution_bits]:.1f}",
        )
        for r in sorted(data.rows, key=lambda r: -r.resolution_bits)
    ]
    emit_result(
        "table1_overhead",
        "Table I — low-resolution channel overhead D_i (%)",
        table(["bit resolution", "measured D_i %", "paper D_i %"], rows),
    )
