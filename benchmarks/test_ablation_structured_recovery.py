"""Ablation: structured/enhanced recovery vs the hybrid side-information.

The paper's introduction positions two levers for cutting the measurement
count: (a) smarter recovery algorithms — "model-based and similar
structural sparse recovery techniques" — and (b) its own contribution, the
low-resolution side information.  This bench pits them directly at an
aggressive CR on identical windows:

* plain BPDN (the baseline),
* reweighted-L1 BPDN (lever a, convex),
* tree-model IHT (lever a, greedy, the Baraniuk et al. model),
* hybrid BPDN (lever b — the paper),
* reweighted hybrid (both levers stacked).
"""

import numpy as np

from repro.metrics.quality import snr_db
from repro.recovery import (
    CsProblem,
    PdhgSettings,
    solve_bpdn,
    solve_hybrid,
    solve_model_iht,
    solve_reweighted_bpdn,
    solve_reweighted_hybrid,
)
from repro.sensing.matrices import bernoulli_matrix
from repro.sensing.quantizers import lowres_bounds, requantize_codes
from repro.signals.database import load_record
from repro.wavelets.operators import WaveletBasis

N, M = 512, 64  # 87.5% CS CR: the regime the paper targets
SETTINGS = PdhgSettings(max_iter=2500, tol=2e-4)


def _run():
    basis = WaveletBasis(N, "db4")
    phi = bernoulli_matrix(M, N, seed=2015)
    prob = CsProblem(phi, basis)
    results = {}
    for name in ("100", "119"):
        record = load_record(name, duration_s=10.0)
        window = next(record.windows(N))
        x = window.astype(float) - 1024
        y = phi @ x
        lowres = requantize_codes(window, 11, 7)
        lower, upper = lowres_bounds(lowres, 11, 7)
        lower, upper = lower - 1024, upper - 1024
        sigma = 1e-3

        runs = {
            "bpdn (plain)": solve_bpdn(
                phi, basis, y, sigma, problem=prob, settings=SETTINGS
            ),
            "reweighted bpdn": solve_reweighted_bpdn(
                phi, basis, y, sigma, problem=prob,
                n_reweights=3, settings=SETTINGS,
            ),
            "tree-model iht": solve_model_iht(
                phi, basis, y, k=M // 3, problem=prob
            ),
            "hybrid (paper)": solve_hybrid(
                phi, basis, y, sigma, lower, upper,
                problem=prob, settings=SETTINGS,
            ),
            "reweighted hybrid": solve_reweighted_hybrid(
                phi, basis, y, sigma, lower, upper,
                problem=prob, n_reweights=2, settings=SETTINGS,
            ),
        }
        for label, r in runs.items():
            results.setdefault(label, []).append(snr_db(x, r.x))
    return {label: float(np.mean(v)) for label, v in results.items()}


def test_ablation_structured_recovery(benchmark, table, emit_result):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    # The paper's thesis, quantified: side information (hybrid) buys far
    # more at this CR than algorithmic sophistication alone.
    best_algorithmic = max(
        results["reweighted bpdn"], results["tree-model iht"]
    )
    assert results["hybrid (paper)"] > best_algorithmic + 3.0
    # And enhanced recovery composes with (does not break) the hybrid.
    assert results["reweighted hybrid"] > results["bpdn (plain)"]

    rows = [(label, f"{snr:.2f}") for label, snr in results.items()]
    emit_result(
        "ablation_structured_recovery",
        "Ablation — recovery levers at 87.5% CS CR (mean SNR dB)",
        table(["method", "SNR (dB)"], rows),
    )
