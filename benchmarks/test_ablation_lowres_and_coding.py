"""Ablations: low-resolution channel depth and entropy-coder structure.

Two trade-offs from DESIGN.md §5:

1. **Channel depth** — the paper fixes 7-bit; this sweep measures both
   sides of the trade (reconstruction SNR up, overhead up) over 4-9 bits
   at a fixed aggressive CS CR, exposing where the knee sits.
2. **Coder structure** — zero-run-length + Huffman (our default, required
   to approach Table I) vs plain symbol-wise Huffman (the naive reading of
   the paper's Section III-B).
"""

import numpy as np

from repro.coding.codebook import train_codebook
from repro.core.config import FrontEndConfig
from repro.core.pipeline import run_record
from repro.experiments.runner import ExperimentScale
from repro.recovery.pdhg import PdhgSettings
from repro.sensing.quantizers import requantize_codes
from repro.signals.database import load_record

SCALE = ExperimentScale(record_names=("100", "200"), duration_s=20.0, max_windows=2)
DEPTHS = (4, 5, 6, 7, 8, 9)


def _run_depth_sweep():
    records = SCALE.records()
    rows = []
    for bits in DEPTHS:
        config = FrontEndConfig(
            n_measurements=48,  # ~91% CS CR: bounds do the heavy lifting
            lowres_bits=bits,
            solver=PdhgSettings(max_iter=1500, tol=2e-4),
        )
        outs = [
            run_record(rec, config, max_windows=SCALE.max_windows)
            for rec in records
        ]
        rows.append(
            {
                "bits": bits,
                "snr": float(np.mean([o.mean_snr_db for o in outs])),
                "overhead": float(
                    np.mean([o.lowres_overhead_percent for o in outs])
                ),
                "net_cr": float(np.mean([o.net_cr_percent for o in outs])),
            }
        )
    return rows


def test_ablation_lowres_depth(benchmark, table, emit_result):
    rows = benchmark.pedantic(_run_depth_sweep, rounds=1, iterations=1)

    by_bits = {r["bits"]: r for r in rows}
    # More bits -> tighter box -> better SNR (monotone up to solver noise).
    assert by_bits[9]["snr"] > by_bits[4]["snr"]
    # More bits -> more overhead.
    assert by_bits[9]["overhead"] > by_bits[4]["overhead"]

    emit_result(
        "ablation_lowres_depth",
        "Ablation — low-res channel depth at ~91% CS CR (hybrid)",
        table(
            ["bits", "SNR (dB)", "overhead %", "net CR %"],
            [
                (
                    r["bits"],
                    f"{r['snr']:.2f}",
                    f"{r['overhead']:.2f}",
                    f"{r['net_cr']:.2f}",
                )
                for r in rows
            ],
        ),
    )


def _run_coding_comparison():
    results = []
    for bits in (4, 7, 10):
        streams = [
            requantize_codes(load_record(n, duration_s=20.0).adu, 11, bits)
            for n in SCALE.record_names
        ]
        rle = train_codebook(streams, bits, use_run_length=True)
        plain = train_codebook(streams, bits, use_run_length=False)
        window = streams[0][:1024]
        results.append(
            {
                "bits": bits,
                "rle": rle.compressed_fraction(window),
                "plain": plain.compressed_fraction(window),
                "rle_storage": rle.storage_bytes(),
                "plain_storage": plain.storage_bytes(),
            }
        )
    return results


def test_ablation_coding(benchmark, table, emit_result):
    results = benchmark.pedantic(_run_coding_comparison, rounds=1, iterations=1)

    for r in results:
        # Run-length coding never loses, and wins big at low resolution
        # (the regime Table I's sub-bit-per-sample numbers require).
        assert r["rle"] <= r["plain"] * 1.02
    low = next(r for r in results if r["bits"] == 4)
    assert low["rle"] < 0.8 * low["plain"]

    emit_result(
        "ablation_coding",
        "Ablation — zero-run-length + Huffman vs plain Huffman",
        table(
            ["bits", "RLE fraction", "plain fraction", "RLE stor. B", "plain stor. B"],
            [
                (
                    r["bits"],
                    f"{r['rle']:.3f}",
                    f"{r['plain']:.3f}",
                    r["rle_storage"],
                    r["plain_storage"],
                )
                for r in results
            ],
        ),
    )
