"""Ablation: measurement ensemble (DESIGN.md §5).

The RMPI architecture realizes a ±1 Bernoulli ensemble in analog hardware;
digital nodes (the authors' TBME-2011 design) prefer sparse-binary for its
add-only arithmetic.  This ablation measures how much recovery quality the
ensemble choice costs at a fixed CR, for both methods.
"""

import numpy as np

from repro.core.config import FrontEndConfig
from repro.core.pipeline import run_record
from repro.experiments.runner import ExperimentScale
from repro.recovery.pdhg import PdhgSettings
from repro.sensing.matrices import SensingSpec

SCALE = ExperimentScale(record_names=("100", "119", "231"), duration_s=20.0, max_windows=2)
ENSEMBLES = ("bernoulli", "gaussian", "sparse_binary", "hadamard")


def _run():
    records = SCALE.records()
    results = {}
    for kind in ENSEMBLES:
        config = FrontEndConfig(
            n_measurements=96,
            sensing=SensingSpec(kind=kind, seed=2015),
            solver=PdhgSettings(max_iter=2000, tol=2e-4),
        )
        for method in ("hybrid", "normal"):
            snrs = [
                run_record(
                    rec, config, method=method, max_windows=SCALE.max_windows
                ).mean_snr_db
                for rec in records
            ]
            results[(kind, method)] = float(np.mean(snrs))
    return results


def test_ablation_ensemble(benchmark, table, emit_result):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    # All dense/sparse ensembles deliver comparable hybrid quality (the box
    # constraint dominates); every hybrid beats its normal counterpart.
    hybrid_snrs = [results[(k, "hybrid")] for k in ENSEMBLES]
    assert max(hybrid_snrs) - min(hybrid_snrs) < 6.0
    for kind in ENSEMBLES:
        assert results[(kind, "hybrid")] > results[(kind, "normal")]

    rows = [
        (kind, f"{results[(kind, 'hybrid')]:.2f}", f"{results[(kind, 'normal')]:.2f}")
        for kind in ENSEMBLES
    ]
    emit_result(
        "ablation_ensemble",
        "Ablation — measurement ensemble at 81% CS CR (mean SNR dB)",
        table(["ensemble", "hybrid", "normal CS"], rows),
    )
