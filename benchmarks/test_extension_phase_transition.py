"""Extension benchmark: the L1 phase transition behind the paper's intro.

The intro's ``m = s log(n/s)`` bound is the geometry of the Donoho-Tanner
phase transition.  This bench measures the empirical transition on small
Gaussian instances and connects it to the Fig. 7 observation: ECG's
effective wavelet sparsity (s/n ≈ 0.07-0.15 for the energy that matters)
crosses the curve exactly in the 85-95 % CR band where normal CS collapses
— while the hybrid design's box constraint sidesteps the transition
entirely.
"""

from repro.recovery.pdhg import PdhgSettings
from repro.recovery.phase_transition import empirical_transition

SETTINGS = PdhgSettings(max_iter=2500, tol=1e-6)


def _run():
    return empirical_transition(
        n=64,
        deltas=(0.125, 0.25, 0.5, 0.75),
        rhos=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8),
        n_trials=8,
    )


def test_extension_phase_transition(benchmark, table, emit_result):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)

    # The transition must be (weakly) increasing in delta — the defining
    # shape of the Donoho-Tanner curve.
    rho_stars = [p.rho_star for p in points]
    assert all(b >= a - 0.05 for a, b in zip(rho_stars[:-1], rho_stars[1:]))
    # At delta = 0.5 the asymptotic transition sits near rho ~ 0.39;
    # small-n estimates land in a generous band around it.
    at_half = next(p for p in points if p.delta == 0.5)
    assert 0.2 < at_half.rho_star < 0.7

    rows = [
        (
            f"{p.delta:.3f}",
            p.m,
            f"{p.rho_star:.2f}",
            " ".join(f"{rate:.1f}" for _, rate in p.success_at),
        )
        for p in points
    ]
    emit_result(
        "extension_phase_transition",
        "Extension — empirical L1 phase transition (n=64, Gaussian)"
        "\nsuccess rates across rho = " +
        ", ".join(f"{r:.1f}" for r, _ in points[0].success_at),
        table(["delta=m/n", "m", "rho* (50%)", "success by rho"], rows),
    )
