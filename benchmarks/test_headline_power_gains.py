"""Benchmark: Section VI headline — power gain at fixed SNR targets.

*Measures* the measurement count each design needs to reach SNR = 20 dB
and 17 dB on real recovery sweeps, evaluates the analytical power model at
those counts, and compares against the paper's quoted operating points
(96 vs 240 → ~2.5x; 16 vs 176 → ~11x).
"""

from repro.experiments import run_headline
from repro.experiments.runner import ExperimentScale

# The m-grid search multiplies solver work; a 4-record scale keeps the
# bench minutes-long while the SNR means stay stable.
HEADLINE_SCALE = ExperimentScale(
    record_names=("100", "103", "119", "208"),
    duration_s=20.0,
    max_windows=2,
)


def test_headline_power_gains(benchmark, table, emit_result):
    data = benchmark.pedantic(
        lambda: run_headline(scale=HEADLINE_SCALE), rounds=1, iterations=1
    )

    for point in data.points:
        # Hybrid always reaches the target with some searched m.
        assert point.m_hybrid is not None
        # Hybrid needs strictly fewer measurements than normal CS (or
        # normal CS cannot reach the target at all).
        if point.m_normal is not None:
            assert point.m_hybrid < point.m_normal
            assert point.measured_gain is not None
            assert point.measured_gain > 1.5
        # The analytical model reproduces the paper's quoted gains at the
        # paper's own operating points.
        assert abs(point.model_gain_at_paper_m - point.paper_gain) < 0.6

    rows = [
        (
            f"{p.target_snr_db:.0f}",
            p.m_hybrid,
            p.m_normal if p.m_normal is not None else "unreachable",
            f"{p.measured_gain:.1f}x" if p.measured_gain else "inf",
            f"{p.paper_m_hybrid}/{p.paper_m_normal}",
            f"{p.model_gain_at_paper_m:.1f}x",
            f"{p.paper_gain:.1f}x",
        )
        for p in data.points
    ]
    emit_result(
        "headline_power_gains",
        "Section VI — measured power gain at fixed reconstruction SNR",
        table(
            [
                "target SNR dB",
                "m hybrid",
                "m normal",
                "measured gain",
                "paper m (h/n)",
                "model gain @ paper m",
                "paper gain",
            ],
            rows,
        ),
    )
