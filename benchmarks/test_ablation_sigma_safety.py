"""Ablation: the fidelity-radius safety factor σ.

Eq. 1 needs a fidelity radius σ.  The receiver sizes it from the known
measurement-quantization noise times a safety factor
(`FrontEndConfig.sigma_safety`).  Too small → the true signal is
infeasible and the solve distorts; too large → the ball admits
low-``‖α‖₁`` imposters and quality drops.  This sweep locates the plateau
that justifies the default of 2.
"""

import numpy as np

from repro.core.config import FrontEndConfig
from repro.core.pipeline import default_codebook, run_record
from repro.recovery.pdhg import PdhgSettings
from repro.signals.database import load_record

SAFETY_VALUES = (0.1, 0.5, 1.0, 2.0, 4.0, 16.0, 64.0)
RECORDS = ("100", "119")


def _run():
    codebook = default_codebook(7)
    results = {}
    for safety in SAFETY_VALUES:
        config = FrontEndConfig(
            window_len=256,
            n_measurements=64,
            sigma_safety=safety,
            solver=PdhgSettings(max_iter=1500, tol=2e-4),
        )
        snrs = [
            run_record(
                load_record(name, duration_s=20.0),
                config,
                codebook=codebook,
                max_windows=3,
            ).mean_snr_db
            for name in RECORDS
        ]
        results[safety] = float(np.mean(snrs))
    return results


def test_ablation_sigma_safety(benchmark, table, emit_result):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    # A broad plateau around the default; the extremes cost quality.
    default = results[2.0]
    assert results[1.0] > default - 2.0
    assert results[4.0] > default - 2.0
    # A wildly oversized ball must hurt (the constraint stops binding).
    assert results[64.0] < default

    rows = [(f"{s:g}", f"{snr:.2f}") for s, snr in results.items()]
    emit_result(
        "ablation_sigma_safety",
        "Ablation — fidelity-radius safety factor (hybrid, 75% CS CR)",
        table(["sigma_safety", "SNR (dB)"], rows),
    )
