"""Extension benchmark: diagnostic quality (QRS detection) vs CR.

Goes beyond the paper's PRD/SNR proxies and measures the clinical end
goal directly: beat-detection fidelity on the reconstructions.  The
expected Fig. 7-like shape — hybrid keeps the detector working deep into
the >90 % CR regime where normal CS destroys the QRS complexes — is
asserted.
"""

from repro.experiments.diagnostic import run_diagnostic
from repro.experiments.runner import ExperimentScale

SCALE = ExperimentScale(
    record_names=("100", "103", "119", "208"),
    duration_s=20.0,
    max_windows=None,
)


def test_extension_diagnostic_quality(benchmark, table, emit_result):
    data = benchmark.pedantic(
        lambda: run_diagnostic(scale=SCALE), rounds=1, iterations=1
    )

    assert data.hybrid_dominates()
    hybrid = data.series("hybrid")
    normal = data.series("normal")
    by_cr = {p.cr_percent: p for p in hybrid}
    # Hybrid reconstructions keep beats detectable deep into the collapse
    # regime (94% CR)...
    assert by_cr[94.0].f1 > 0.9
    # ...and still hold a clear margin at the extreme 97% point, where
    # normal CS has lost a large fraction of the beats.
    assert hybrid[-1].f1 > normal[-1].f1 + 0.1

    rows = []
    for h, n in zip(hybrid, normal):
        rows.append(
            (
                f"{h.cr_percent:.0f}",
                f"{h.sensitivity:.3f}",
                f"{h.positive_predictivity:.3f}",
                f"{h.f1:.3f}",
                f"{n.sensitivity:.3f}",
                f"{n.positive_predictivity:.3f}",
                f"{n.f1:.3f}",
            )
        )
    emit_result(
        "extension_diagnostic_quality",
        "Extension — QRS-detection fidelity vs CR (hybrid | normal CS)",
        table(
            ["CR %", "hyb Se", "hyb +P", "hyb F1", "CS Se", "CS +P", "CS F1"],
            rows,
        ),
    )
