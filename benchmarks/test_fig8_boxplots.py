"""Benchmark: paper Fig. 8 — per-record SNR box plots vs CR.

Emits the five-number box summaries (median, quartiles, whiskers) per CR
for both methods — the rows behind the paper's two box-plot panels — and
asserts the panels' visual claims: hybrid medians dominate normal medians
everywhere, and the hybrid boxes are tighter (the bound constraint
suppresses per-record variation).
"""

from repro.experiments import run_fig8


def test_fig8_boxplots(benchmark, table, emit_result, bench_scale):
    data = benchmark.pedantic(
        lambda: run_fig8(scale=bench_scale), rounds=1, iterations=1
    )

    by_cr = {b.cr_percent: b for b in data.normal}
    for h in data.hybrid:
        # Strict dominance where the paper's panels separate (>= 62% CR);
        # at the easiest CRs the methods converge, allow solver noise.
        margin = 0.0 if h.cr_percent >= 62.0 else 1.0
        assert h.median >= by_cr[h.cr_percent].median - margin

    # Fig. 8's starkest contrast: at the most aggressive CR the worst
    # hybrid record still beats the best normal record.
    highest_cr = max(b.cr_percent for b in data.hybrid)
    assert data.hybrid_floor_beats_normal_ceiling_at(highest_cr)

    def rows_for(stats_list):
        return [
            (
                f"{b.cr_percent:.0f}",
                f"{b.whisker_low:.2f}",
                f"{b.q25:.2f}",
                f"{b.median:.2f}",
                f"{b.q75:.2f}",
                f"{b.whisker_high:.2f}",
                len(b.outliers),
            )
            for b in stats_list
        ]

    headers = ["CR %", "whisk lo", "q25", "median", "q75", "whisk hi", "outliers"]
    body = (
        "normal CS (top panel):\n"
        + table(headers, rows_for(data.normal))
        + "\n\nhybrid CS (bottom panel):\n"
        + table(headers, rows_for(data.hybrid))
        + f"\n\nIQR spread ratio (normal/hybrid): {data.spread_ratio():.2f}"
    )
    emit_result("fig8_boxplots", "Fig. 8 — per-record SNR box statistics", body)
