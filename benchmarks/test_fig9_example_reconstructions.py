"""Benchmark: paper Fig. 9 — example reconstructions at delta = 6/12/25 %.

Reconstructs one window through the full hybrid pipeline at the paper's
undersampling ratios and emits the per-panel SNR (the figure's titles:
18.7 dB at 6 %, 19.7 dB at 12 %).  Asserts the claim the figure makes:
"even with a very high compression ratio of [delta =] 6 %, the output SNR
is [still high]".
"""

import numpy as np

from repro.experiments import PAPER_FIG9_DELTAS, run_fig9


def test_fig9_example_reconstructions(benchmark, table, emit_result):
    data = benchmark.pedantic(
        lambda: run_fig9(record_name="100", deltas=PAPER_FIG9_DELTAS),
        rounds=1,
        iterations=1,
    )

    assert data.snr_improves_with_delta()
    # Paper: 18.7 dB at delta=6%; same regime (usable quality) here.
    assert data.panels[0].snr_db > 15.0

    rows = [
        (
            f"{p.delta:.0%}",
            p.n_measurements,
            f"{p.snr_db:.1f}",
            f"{float(np.max(np.abs(p.original_mv - p.reconstructed_mv))):.3f}",
        )
        for p in data.panels
    ]
    emit_result(
        "fig9_example_reconstructions",
        f"Fig. 9 — hybrid reconstructions of record {data.record_name} "
        "at delta = m/n",
        table(
            ["delta", "m", "SNR (dB)", "max |err| (mV)"],
            rows,
        ),
    )
