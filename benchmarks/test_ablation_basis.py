"""Ablation: sparsifying basis choice (DESIGN.md §5).

The paper (via the authors' TBME-2011 work) uses Daubechies wavelets; this
ablation quantifies how much of the hybrid design's quality comes from that
choice by swapping Ψ: db4 vs haar vs sym6 vs DCT at a fixed 81 % CS CR.
"""

import numpy as np

from repro.core.config import FrontEndConfig
from repro.core.pipeline import run_record
from repro.experiments.runner import ExperimentScale
from repro.recovery.pdhg import PdhgSettings

SCALE = ExperimentScale(record_names=("100", "103", "208"), duration_s=20.0, max_windows=2)
BASES = ("db4", "haar", "sym6", "dct")


def _run():
    records = SCALE.records()
    results = {}
    for spec in BASES:
        config = FrontEndConfig(
            n_measurements=96,
            basis_spec=spec,
            solver=PdhgSettings(max_iter=2000, tol=2e-4),
        )
        snrs = [
            run_record(rec, config, max_windows=SCALE.max_windows).mean_snr_db
            for rec in records
        ]
        results[spec] = float(np.mean(snrs))
    return results


def test_ablation_basis(benchmark, table, emit_result):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    # Any orthonormal wavelet basis should land in a usable band; db4
    # (the paper's family) must not lose to haar by a wide margin.
    assert results["db4"] > 15.0
    assert results["db4"] >= results["haar"] - 1.0

    rows = [(spec, f"{snr:.2f}") for spec, snr in results.items()]
    emit_result(
        "ablation_basis",
        "Ablation — sparsifying basis at 81% CS CR (hybrid, mean SNR dB)",
        table(["basis", "SNR (dB)"], rows),
    )
