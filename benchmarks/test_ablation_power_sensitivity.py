"""Ablation: sensitivity of the power conclusions to model parameters.

The 2.5x/11x gains rest on analytical block models with several "typical"
constants (NEF, front-end gain, ADC FOM, supply).  This tornado-style
sweep perturbs each one across its plausible range and records (a) the
absolute hybrid power and (b) the normal/hybrid *gain* — demonstrating the
paper's key structural fact: the gain is a pure channel-count ratio,
invariant to every analog constant, even though absolute watts swing by
orders of magnitude.
"""

from dataclasses import replace

from repro.power.rmpi_power import HybridArchitecture, RmpiArchitecture

FS = 360.0
BASE = RmpiArchitecture(m=240, n=512)

#: parameter -> (low, high) plausible range.
SWEEPS = {
    "nef": (2.0, 3.0),                 # paper: "between 2 and 3"
    "gain_db": (34.0, 46.0),           # +-6 dB around the 40 dB choice
    "fom_j_per_conv": (20e-15, 500e-15),
    "vdd_v": (0.8, 1.2),
    "pole_capacitance_f": (0.5e-12, 5e-12),
}


def _gain(normal: RmpiArchitecture) -> float:
    hybrid = HybridArchitecture(cs=normal.with_channels(96), lowres_bits=7)
    return normal.total_w(FS) / hybrid.total_w(FS)


def _run():
    base_power = BASE.total_w(FS)
    base_gain = _gain(BASE)
    rows = [("(baseline)", f"{base_power * 1e6:.3g}", f"{base_gain:.3f}")]
    for name, (lo, hi) in SWEEPS.items():
        for value in (lo, hi):
            arch = replace(BASE, **{name: value})
            rows.append(
                (
                    f"{name}={value:g}",
                    f"{arch.total_w(FS) * 1e6:.3g}",
                    f"{_gain(arch):.3f}",
                )
            )
    return rows, base_gain


def test_ablation_power_sensitivity(benchmark, table, emit_result):
    rows, base_gain = benchmark(_run)

    # The structural claim: the gain never moves, whatever the constants.
    gains = [float(r[2]) for r in rows]
    assert max(gains) - min(gains) < 0.05
    assert abs(base_gain - 2.5) < 0.05
    # While absolute power swings by more than an order of magnitude.
    powers = [float(r[1]) for r in rows]
    assert max(powers) / min(powers) > 2.0

    emit_result(
        "ablation_power_sensitivity",
        "Ablation — power-model parameter sensitivity (m=240 vs m=96 gain)",
        table(["parameter", "P_normal (uW)", "gain"], rows),
    )
