"""Benchmark: paper Fig. 2 — the low-resolution window and its bound area.

Regenerates both panels' series: Fig. 2(a) original vs 7-bit samples of an
example window, Fig. 2(b) the [x_dot, x_dot + d] bound band.  The emitted
summary reports the band statistics the figure conveys visually.
"""

import numpy as np

from repro.experiments import run_fig2


def _run():
    return run_fig2(record_name="100", lowres_bits=7)


def test_fig2_lowres_window(benchmark, table, emit_result):
    data = benchmark(_run)

    assert data.bounds_contain_original()
    assert data.bound_width_adu == 16.0  # d = 2^(11-7) codes

    unique_lowres = len(np.unique(data.lowres_adu))
    unique_orig = len(np.unique(data.original_adu))
    rows = [
        ("record", data.record_name),
        ("window length (samples)", data.original_adu.size),
        ("low-res resolution (bits)", data.lowres_bits),
        ("bound width d (ADU)", int(data.bound_width_adu)),
        ("original range (ADU)", f"{data.original_adu.min()}..{data.original_adu.max()}"),
        ("distinct original values", unique_orig),
        ("distinct low-res values", unique_lowres),
        ("original inside bound band", data.bounds_contain_original()),
    ]
    emit_result(
        "fig2_lowres_window",
        "Fig. 2 — example 7-bit low-resolution window and bound area",
        table(["quantity", "value"], rows),
    )
